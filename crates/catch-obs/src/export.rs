//! File exporters and deterministic part-file merging.
//!
//! Two formats:
//!
//! * **Chrome trace JSON** — loadable in `about://tracing` / Perfetto:
//!   `{"traceEvents":[ ... ]}` with one event object per line.
//! * **JSONL** — one `{"cycle":..,"core":..,"name":..,"args":{..}}`
//!   record per line, for ad-hoc `grep`/`jq`-style analysis.
//!
//! For parallel suite runs every worker job writes its own *part file*
//! (events of one job are deterministic; interleaving across jobs is
//! not), and [`merge_parts`] stitches the parts **in job-index order**
//! after the run — so the merged trace is byte-identical for every
//! worker count, exactly like the runner's index-ordered stats
//! reduction.

use crate::event::Event;
use crate::sink::EventSink;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Trace file format, chosen from the output path's extension.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TraceFormat {
    /// Chrome `about://tracing` JSON (`.json` and anything else).
    Chrome,
    /// Newline-delimited JSON records (`.jsonl`).
    Jsonl,
}

impl TraceFormat {
    /// `.jsonl` selects [`TraceFormat::Jsonl`]; everything else is
    /// Chrome trace JSON.
    pub fn from_path(path: &Path) -> Self {
        match path.extension().and_then(|e| e.to_str()) {
            Some("jsonl") => TraceFormat::Jsonl,
            _ => TraceFormat::Chrome,
        }
    }
}

/// Streaming Chrome-trace exporter.
///
/// In *fragment* mode the array wrapper and separators are omitted (one
/// bare object per line) so part files can be merged textually by
/// [`merge_parts`] without parsing.
#[derive(Debug)]
pub struct ChromeTraceSink<W: Write> {
    w: W,
    fragment: bool,
    events: u64,
}

impl ChromeTraceSink<BufWriter<File>> {
    /// Creates a standalone (non-fragment) exporter writing to `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }

    /// Creates a fragment exporter writing to `path` (for part files).
    pub fn create_fragment(path: &Path) -> io::Result<Self> {
        Ok(Self::fragment(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> ChromeTraceSink<W> {
    /// A standalone exporter: emits the `{"traceEvents":[...]}` wrapper.
    pub fn new(w: W) -> Self {
        ChromeTraceSink {
            w,
            fragment: false,
            events: 0,
        }
    }

    /// A fragment exporter: bare event objects, one per line.
    pub fn fragment(w: W) -> Self {
        ChromeTraceSink {
            w,
            fragment: true,
            events: 0,
        }
    }

    /// Events written so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

impl<W: Write> EventSink for ChromeTraceSink<W> {
    fn record(&mut self, event: Event) {
        let sep = match (self.fragment, self.events) {
            (true, _) => "",
            (false, 0) => "{\"traceEvents\":[\n",
            (false, _) => ",\n",
        };
        let line = event.to_chrome();
        // An I/O error mid-trace is unrecoverable for the exporter;
        // surface it at the emit site rather than truncating silently.
        write!(self.w, "{sep}{line}").expect("writing chrome trace event");
        if self.fragment {
            writeln!(self.w).expect("writing chrome trace event");
        }
        self.events += 1;
    }

    fn finish(&mut self) -> io::Result<()> {
        if !self.fragment {
            if self.events == 0 {
                self.w.write_all(b"{\"traceEvents\":[")?;
            }
            self.w.write_all(b"\n]}\n")?;
        }
        self.w.flush()
    }
}

/// Streaming JSONL exporter: one event record per line.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    w: W,
    events: u64,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates an exporter writing to `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// An exporter over any writer.
    pub fn new(w: W) -> Self {
        JsonlSink { w, events: 0 }
    }

    /// Events written so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn record(&mut self, event: Event) {
        writeln!(self.w, "{}", event.to_jsonl()).expect("writing jsonl trace event");
        self.events += 1;
    }

    fn finish(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// The part-file path for worker job `index` of a merged trace at `out`.
pub fn part_path(out: &Path, index: usize) -> PathBuf {
    let mut name = out.as_os_str().to_os_string();
    name.push(format!(".part{index:04}"));
    PathBuf::from(name)
}

/// Merges per-job part files (fragment format matching `format`) into
/// the final trace at `out`, **in the given order** (callers pass parts
/// in job-index order, making the merge independent of worker count and
/// scheduling). Part files are deleted after a successful merge.
/// Returns the merged event count.
pub fn merge_parts(parts: &[PathBuf], out: &Path, format: TraceFormat) -> io::Result<u64> {
    let mut w = BufWriter::new(File::create(out)?);
    let mut events = 0u64;
    if format == TraceFormat::Chrome {
        w.write_all(b"{\"traceEvents\":[\n")?;
    }
    for part in parts {
        let r = BufReader::new(File::open(part)?);
        for line in r.lines() {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            match format {
                TraceFormat::Chrome => {
                    if events > 0 {
                        w.write_all(b",\n")?;
                    }
                    w.write_all(line.as_bytes())?;
                }
                TraceFormat::Jsonl => {
                    w.write_all(line.as_bytes())?;
                    w.write_all(b"\n")?;
                }
            }
            events += 1;
        }
    }
    if format == TraceFormat::Chrome {
        w.write_all(b"\n]}\n")?;
    }
    w.flush()?;
    for part in parts {
        std::fs::remove_file(part)?;
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::json_lint::validate_json;

    fn ev(cycle: u64) -> Event {
        Event {
            cycle,
            core: 0,
            kind: EventKind::Retire { pc: cycle },
        }
    }

    #[test]
    fn chrome_output_is_valid_json() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        for c in 0..3 {
            sink.record(ev(c));
        }
        sink.finish().unwrap();
        let text = String::from_utf8(sink.w).unwrap();
        validate_json(&text).expect("chrome trace parses");
        assert!(text.starts_with("{\"traceEvents\":["));
        assert_eq!(sink.events, 3);
    }

    #[test]
    fn empty_chrome_trace_is_valid_json() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.finish().unwrap();
        validate_json(&String::from_utf8(sink.w).unwrap()).expect("empty trace parses");
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(ev(1));
        sink.record(ev(2));
        sink.finish().unwrap();
        let text = String::from_utf8(sink.w).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            validate_json(line).expect("jsonl record parses");
        }
    }

    #[test]
    fn merge_stitches_parts_in_order_and_cleans_up() {
        let dir = std::env::temp_dir().join("catch-obs-merge-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("trace.json");
        let parts: Vec<PathBuf> = (0..3).map(|i| part_path(&out, i)).collect();
        for (i, part) in parts.iter().enumerate() {
            let mut sink = ChromeTraceSink::create_fragment(part).unwrap();
            sink.record(ev(i as u64 * 10));
            sink.finish().unwrap();
        }
        let n = merge_parts(&parts, &out, TraceFormat::Chrome).unwrap();
        assert_eq!(n, 3);
        let text = std::fs::read_to_string(&out).unwrap();
        validate_json(&text).expect("merged trace parses");
        // Job order preserved: cycle 0 before 10 before 20.
        let pos = |needle: &str| text.find(needle).expect(needle);
        assert!(pos("\"ts\":0,") < pos("\"ts\":10,"));
        assert!(pos("\"ts\":10,") < pos("\"ts\":20,"));
        for part in &parts {
            assert!(!part.exists(), "part files removed after merge");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
