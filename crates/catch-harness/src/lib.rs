//! First-party benchmark harness for the CATCH workspace.
//!
//! The workspace builds fully offline, so instead of an external bench
//! framework the `cargo bench` targets run on this minimal harness:
//! optional warm-up iterations, a fixed number of timed iterations, and
//! min / median / mean / max wall-clock summaries with derived
//! throughput. Emission reuses the same [`catch_core::report::Table`]
//! renderer the experiments print with, plus the workspace JSON writer
//! for machine consumption — no external dependency either way.
//!
//! Iteration counts come from the environment so CI smoke runs and local
//! deep runs share one binary:
//!
//! * `CATCH_BENCH_ITERS` — timed iterations per benchmark (default 3).
//! * `CATCH_BENCH_WARMUP_ITERS` — discarded warm-up iterations
//!   (default 1).
//! * `CATCH_BENCH_JSON` — when set (any value), a JSON summary is
//!   printed to stdout after the table.
//!
//! # Example
//!
//! ```
//! use catch_harness::Harness;
//!
//! let mut h = Harness::new("demo");
//! h.bench("sum", 1_000, || {
//!     let s: u64 = (0..1_000u64).sum();
//!     assert!(s > 0);
//! });
//! println!("{}", h.table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use catch_core::report::{Table, ValueKind};
use std::time::Instant;

/// Iteration counts for one harness run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BenchOptions {
    /// Discarded warm-up iterations before timing starts.
    pub warmup_iters: u32,
    /// Timed iterations (at least 1).
    pub iters: u32,
}

impl BenchOptions {
    /// Default scale: one warm-up plus three timed iterations — enough
    /// for a stable median without multiplying simulation time.
    pub fn standard() -> Self {
        BenchOptions {
            warmup_iters: 1,
            iters: 3,
        }
    }

    /// Reads the scale from the environment (see crate docs), falling
    /// back to [`BenchOptions::standard`].
    pub fn from_env() -> Self {
        let mut opts = BenchOptions::standard();
        if let Some(iters) = std::env::var("CATCH_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            opts.iters = iters;
        }
        if let Some(warmup) = std::env::var("CATCH_BENCH_WARMUP_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            opts.warmup_iters = warmup;
        }
        opts.iters = opts.iters.max(1);
        opts
    }
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions::standard()
    }
}

/// Wall-clock summary of one benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark label.
    pub label: String,
    /// Timed iterations performed.
    pub iters: u32,
    /// Nominal operations per iteration (0 = no throughput reported).
    pub ops_per_iter: u64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u64,
    /// Median iteration, nanoseconds.
    pub median_ns: u64,
    /// Mean iteration, nanoseconds.
    pub mean_ns: u64,
    /// Slowest iteration, nanoseconds.
    pub max_ns: u64,
}

impl BenchResult {
    /// Summarises raw per-iteration durations (nanoseconds, non-empty).
    fn from_samples(label: &str, ops_per_iter: u64, mut samples: Vec<u64>) -> Self {
        assert!(!samples.is_empty(), "at least one timed iteration");
        samples.sort_unstable();
        let n = samples.len();
        let median_ns = if n % 2 == 1 {
            samples[n / 2]
        } else {
            (samples[n / 2 - 1] + samples[n / 2]) / 2
        };
        let mean_ns = (samples.iter().map(|&s| s as u128).sum::<u128>() / n as u128) as u64;
        BenchResult {
            label: label.to_string(),
            iters: n as u32,
            ops_per_iter,
            min_ns: samples[0],
            median_ns,
            mean_ns,
            max_ns: samples[n - 1],
        }
    }

    /// Throughput in operations per second, from the median iteration
    /// (0.0 when no op count was supplied or timing underflowed).
    pub fn ops_per_sec(&self) -> f64 {
        if self.ops_per_iter == 0 || self.median_ns == 0 {
            0.0
        } else {
            self.ops_per_iter as f64 / (self.median_ns as f64 * 1e-9)
        }
    }
}

/// A group of benchmarks sharing one options set and one report.
#[derive(Clone, Debug)]
pub struct Harness {
    name: String,
    options: BenchOptions,
    results: Vec<BenchResult>,
}

impl Harness {
    /// A harness scaled from the environment (see crate docs).
    pub fn new(name: impl Into<String>) -> Self {
        Harness::with_options(name, BenchOptions::from_env())
    }

    /// A harness with explicit iteration counts.
    pub fn with_options(name: impl Into<String>, options: BenchOptions) -> Self {
        Harness {
            name: name.into(),
            options: BenchOptions {
                warmup_iters: options.warmup_iters,
                iters: options.iters.max(1),
            },
            results: Vec::new(),
        }
    }

    /// Runs one benchmark: `warmup_iters` discarded calls of `f`, then
    /// `iters` timed calls. `ops_per_iter` is the caller's nominal work
    /// per iteration (simulated micro-ops here) and only feeds the
    /// throughput column; pass 0 to omit it.
    pub fn bench(&mut self, label: &str, ops_per_iter: u64, mut f: impl FnMut()) -> &BenchResult {
        for _ in 0..self.options.warmup_iters {
            f();
        }
        let mut samples = Vec::with_capacity(self.options.iters as usize);
        for _ in 0..self.options.iters {
            let start = Instant::now();
            f();
            samples.push(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        self.results
            .push(BenchResult::from_samples(label, ops_per_iter, samples));
        self.results.last().expect("just pushed")
    }

    /// All results in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Renders the summary as a [`catch_core::report::Table`]
    /// (milliseconds, plus Mops/s throughput).
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            format!("{} (wall clock, {} iters)", self.name, self.options.iters),
            ["min ms", "median ms", "mean ms", "max ms", "Mops/s"]
                .into_iter()
                .map(String::from)
                .collect(),
            ValueKind::Raw,
        );
        for r in &self.results {
            table.push_row(
                r.label.clone(),
                vec![
                    r.min_ns as f64 * 1e-6,
                    r.median_ns as f64 * 1e-6,
                    r.mean_ns as f64 * 1e-6,
                    r.max_ns as f64 * 1e-6,
                    r.ops_per_sec() * 1e-6,
                ],
            );
        }
        table
    }

    /// Renders the summary as JSON (workspace writer; no external
    /// dependency). Timing is environment-dependent by nature, so unlike
    /// the golden-stats snapshot this output is *not* byte-stable across
    /// runs — it is for dashboards and ad-hoc diffing.
    pub fn json(&self) -> String {
        use catch_core::report::json::{counters_to_json, escape};
        let benches: Vec<String> = self
            .results
            .iter()
            .map(|r| {
                let counters = vec![
                    ("iters".to_string(), r.iters as u64),
                    ("ops_per_iter".to_string(), r.ops_per_iter),
                    ("min_ns".to_string(), r.min_ns),
                    ("median_ns".to_string(), r.median_ns),
                    ("mean_ns".to_string(), r.mean_ns),
                    ("max_ns".to_string(), r.max_ns),
                    ("ops_per_sec".to_string(), r.ops_per_sec() as u64),
                ];
                format!(
                    "    {{\n      \"label\": \"{}\",\n      \"timing\": {}\n    }}",
                    escape(&r.label),
                    counters_to_json(&counters, 3),
                )
            })
            .collect();
        format!(
            "{{\n  \"harness\": \"{}\",\n  \"benches\": [\n{}\n  ]\n}}\n",
            escape(&self.name),
            benches.join(",\n"),
        )
    }

    /// Prints the table to stdout, plus the JSON summary when
    /// `CATCH_BENCH_JSON` is set.
    pub fn report(&self) {
        println!("{}", self.table());
        if std::env::var_os("CATCH_BENCH_JSON").is_some() {
            println!("{}", self.json());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BenchOptions {
        BenchOptions {
            warmup_iters: 0,
            iters: 3,
        }
    }

    #[test]
    fn bench_counts_iterations() {
        let mut calls = 0u32;
        let mut h = Harness::with_options(
            "t",
            BenchOptions {
                warmup_iters: 2,
                iters: 5,
            },
        );
        let r = h.bench("b", 10, || calls += 1).clone();
        assert_eq!(calls, 7, "2 warmup + 5 timed");
        assert_eq!(r.iters, 5);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.max_ns);
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
    }

    #[test]
    fn median_of_even_samples_averages() {
        let r = BenchResult::from_samples("m", 0, vec![10, 20, 40, 30]);
        assert_eq!(r.median_ns, 25);
        assert_eq!(r.min_ns, 10);
        assert_eq!(r.max_ns, 40);
        assert_eq!(r.mean_ns, 25);
    }

    #[test]
    fn throughput_derives_from_median() {
        let r = BenchResult::from_samples("t", 1_000, vec![1_000_000]);
        // 1000 ops in 1 ms = 1M ops/s.
        assert!((r.ops_per_sec() - 1e6).abs() < 1.0);
        let none = BenchResult::from_samples("n", 0, vec![1_000]);
        assert_eq!(none.ops_per_sec(), 0.0);
    }

    #[test]
    fn zero_iters_clamps_to_one() {
        let mut h = Harness::with_options(
            "t",
            BenchOptions {
                warmup_iters: 0,
                iters: 0,
            },
        );
        let r = h.bench("b", 0, || {}).clone();
        assert_eq!(r.iters, 1);
    }

    #[test]
    fn table_has_row_per_bench() {
        let mut h = Harness::with_options("grp", quick());
        h.bench("a", 100, || {});
        h.bench("b", 100, || {});
        let t = h.table();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.columns.len(), 5);
        assert!(t.title.contains("grp"));
    }

    #[test]
    fn json_lists_benches() {
        let mut h = Harness::with_options("grp", quick());
        h.bench("a", 100, || {});
        let json = h.json();
        assert!(json.contains("\"harness\": \"grp\""));
        assert!(json.contains("\"label\": \"a\""));
        assert!(json.contains("\"median_ns\""));
    }
}
