//! Timing properties of the out-of-order core model.
//!
//! Properties run on the in-repo deterministic case driver
//! ([`catch_trace::rng::Cases`]); a failing case prints the seed that
//! reproduces it.

use catch_cache::{CacheHierarchy, FixedLatencyBackend, HierarchyConfig, Level};
use catch_cpu::{Core, CoreConfig};
use catch_trace::rng::{Cases, SplitMix64};
use catch_trace::{Addr, ArchReg, TraceBuilder};

fn hier() -> CacheHierarchy {
    CacheHierarchy::new(
        &HierarchyConfig::skylake_server(1),
        Box::new(FixedLatencyBackend::new(200)),
    )
}

fn r(i: u8) -> ArchReg {
    ArchReg::new(i)
}

#[derive(Clone, Debug)]
enum GenOp {
    Alu { dst: u8, src: u8 },
    Load { dst: u8, line: u64 },
    Store { line: u64, src: u8 },
    Branch { taken: bool, src: u8 },
}

fn gen_op(rng: &mut SplitMix64) -> GenOp {
    match rng.gen_range(0u64..4) {
        0 => GenOp::Alu {
            dst: rng.gen_range(1u64..8) as u8,
            src: rng.gen_range(1u64..8) as u8,
        },
        1 => GenOp::Load {
            dst: rng.gen_range(1u64..8) as u8,
            line: rng.gen_range(0u64..256),
        },
        2 => GenOp::Store {
            line: rng.gen_range(0u64..256),
            src: rng.gen_range(1u64..8) as u8,
        },
        _ => GenOp::Branch {
            taken: rng.gen_bool(0.5),
            src: rng.gen_range(1u64..8) as u8,
        },
    }
}

fn gen_ops(rng: &mut SplitMix64, min: usize, max: usize) -> Vec<GenOp> {
    let n = rng.gen_range(min..max);
    (0..n).map(|_| gen_op(rng)).collect()
}

fn build(ops: &[GenOp]) -> catch_trace::Trace {
    let mut b = TraceBuilder::new("prop");
    for op in ops {
        match *op {
            GenOp::Alu { dst, src } => {
                b.alu(r(dst), &[r(src)]);
            }
            GenOp::Load { dst, line } => {
                b.load(r(dst), Addr::new(line * 64), line);
            }
            GenOp::Store { line, src } => {
                b.store(Addr::new(line * 64), &[r(src)]);
            }
            GenOp::Branch { taken, src } => {
                let t = b.cursor().advance(8);
                b.cond_branch(taken, t, &[r(src)]);
            }
        }
    }
    b.build()
}

/// IPC never exceeds the machine width, every op retires, and cycle
/// counts are deterministic.
#[test]
fn ipc_bounded_and_all_retire() {
    Cases::new(48).run(|rng| {
        let ops = gen_ops(rng, 1, 300);
        let trace = build(&ops);
        let expect = trace.len() as u64;
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let mut core = Core::new(0, trace, config);
        let stats = core.run_to_completion(&mut hier());
        assert_eq!(stats.instructions, expect);
        assert!(
            stats.ipc() <= 4.0 + 1e-9,
            "IPC {} beyond width",
            stats.ipc()
        );
        assert!(stats.cycles > 0);
    });
}

/// Monotonicity: making the L1 slower never speeds the program up.
#[test]
fn l1_latency_is_monotone() {
    Cases::new(48).run(|rng| {
        let ops = gen_ops(rng, 20, 200);
        let trace = build(&ops);
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        config.baseline_prefetchers = false;
        let cycles_at = |extra: u64| {
            let mut h = hier();
            h.add_level_latency(Level::L1, extra);
            let mut core = Core::new(0, trace.clone(), config.clone());
            core.run_to_completion(&mut h).cycles
        };
        let fast = cycles_at(0);
        let slow = cycles_at(10);
        // Greedy age-ordered scheduling is subject to (Graham-style)
        // anomalies, so strict monotonicity does not hold cycle-for-cycle;
        // allow a small scheduling-slack tolerance.
        let slack = fast / 20 + 16;
        assert!(
            slow + slack >= fast,
            "slower L1 gave materially fewer cycles: {slow} < {fast}"
        );
    });
}

/// Appending a suffix never makes the whole program finish sooner
/// than the prefix alone (inserting ops *within* a program can change
/// branch-predictor aliasing, so only suffix extension is monotone).
#[test]
fn suffix_extension_is_monotone() {
    Cases::new(48).run(|rng| {
        let ops = gen_ops(rng, 10, 100);
        let prefix = build(&ops);
        let doubled: Vec<GenOp> = ops.iter().chain(ops.iter()).cloned().collect();
        let extended = build(&doubled);
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let run = |t: catch_trace::Trace| {
            let mut core = Core::new(0, t, config.clone());
            core.run_to_completion(&mut hier()).cycles
        };
        let short = run(prefix);
        let long = run(extended);
        assert!(
            long >= short,
            "longer trace finished sooner: {long} < {short}"
        );
    });
}

/// The ROB caps memory-level parallelism: a window of independent loads
/// completes in far fewer cycles than their serial latency sum.
#[test]
fn independent_loads_overlap() {
    let mut b = TraceBuilder::new("mlp");
    for i in 0..64u64 {
        b.load(r(1), Addr::new(i * 4096), 0); // distinct pages, all miss
    }
    let mut config = CoreConfig::baseline();
    config.perfect_l1i = true;
    config.baseline_prefetchers = false;
    let mut core = Core::new(0, b.build(), config);
    let stats = core.run_to_completion(&mut hier());
    // 64 serial misses would be ≥ 64 × 240 cycles; MLP must slash that.
    assert!(
        stats.cycles < 64 * 240 / 4,
        "no overlap: {} cycles",
        stats.cycles
    );
}

/// Dependent loads cannot overlap: a pointer chase takes at least the sum
/// of its miss latencies.
#[test]
fn dependent_loads_serialise() {
    let mut b = TraceBuilder::new("serial");
    let mut addr = 0u64;
    for _ in 0..32 {
        let next = (addr + 7919) % 100_000;
        b.load_dep(r(1), Addr::new(addr * 64), next, &[r(1)]);
        addr = next;
    }
    let mut config = CoreConfig::baseline();
    config.perfect_l1i = true;
    config.baseline_prefetchers = false;
    let mut core = Core::new(0, b.build(), config);
    let stats = core.run_to_completion(&mut hier());
    assert!(
        stats.cycles >= 32 * 240,
        "chase overlapped impossibly: {} cycles",
        stats.cycles
    );
}
