//! The in-order front end: fetch, branch prediction, L1I and code
//! runahead.

use crate::branch::{BranchStats, BranchUnit};
use crate::config::CoreConfig;
use catch_cache::{AccessKind, CacheHierarchy, Level};
use catch_prefetch::CodeRunahead;
use catch_trace::{LineAddr, MicroOp, OpClass, Trace};
use std::collections::VecDeque;

/// Front-end counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Micro-ops fetched.
    pub fetched: u64,
    /// L1I misses taken (stalls).
    pub icache_misses: u64,
    /// Code-runahead prefetches issued.
    pub code_prefetches: u64,
    /// Mispredicted branches fetched.
    pub mispredicts: u64,
    /// Cycles spent stalled on the instruction cache.
    pub icache_stall_cycles: u64,
}

impl catch_trace::counters::Counters for FrontendStats {
    fn counters_into(&self, prefix: &str, out: &mut catch_trace::counters::CounterVec) {
        use catch_trace::counters::push_counter;
        push_counter(out, prefix, "fetched", self.fetched);
        push_counter(out, prefix, "icache_misses", self.icache_misses);
        push_counter(out, prefix, "code_prefetches", self.code_prefetches);
        push_counter(out, prefix, "mispredicts", self.mispredicts);
        push_counter(out, prefix, "icache_stall_cycles", self.icache_stall_cycles);
    }
}

impl catch_trace::counters::FromCounters for FrontendStats {
    fn from_counters(
        prefix: &str,
        src: &mut catch_trace::counters::CounterSource,
    ) -> Result<Self, String> {
        Ok(FrontendStats {
            fetched: src.take(prefix, "fetched")?,
            icache_misses: src.take(prefix, "icache_misses")?,
            code_prefetches: src.take(prefix, "code_prefetches")?,
            mispredicts: src.take(prefix, "mispredicts")?,
            icache_stall_cycles: src.take(prefix, "icache_stall_cycles")?,
        })
    }
}

/// Fetches micro-ops in program order, consulting the L1I per code line
/// and stopping at mispredicted branches until the core reports
/// resolution.
#[derive(Debug)]
pub struct Frontend {
    core_id: usize,
    cursor: usize,
    predictor: BranchUnit,
    runahead: CodeRunahead,
    code_prefetch_enabled: bool,
    perfect_l1i: bool,
    fetch_width: usize,
    runahead_lines: usize,
    last_code_line: Option<LineAddr>,
    stall_until: u64,
    blocked_on_mispredict: bool,
    stats: FrontendStats,
    /// Scratch for the runahead line walk (reused across stalls so the
    /// per-cycle path allocates nothing).
    runahead_scratch: Vec<LineAddr>,
}

impl Frontend {
    /// Creates the front end for `core_id`.
    pub fn new(core_id: usize, config: &CoreConfig) -> Self {
        Frontend {
            core_id,
            cursor: 0,
            predictor: BranchUnit::skylake_like(),
            runahead: CodeRunahead::new(config.code_runahead_lines.max(1)),
            code_prefetch_enabled: config.tact.code,
            perfect_l1i: config.perfect_l1i,
            fetch_width: config.fetch_width,
            runahead_lines: config.code_runahead_lines,
            last_code_line: None,
            stall_until: 0,
            blocked_on_mispredict: false,
            stats: FrontendStats::default(),
            runahead_scratch: Vec::new(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> FrontendStats {
        self.stats
    }

    /// Branch predictor counters.
    pub fn branch_stats(&self) -> BranchStats {
        self.predictor.stats()
    }

    /// Position in the trace.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// True when the whole trace has been fetched.
    pub fn done(&self, trace: &Trace) -> bool {
        self.cursor >= trace.len()
    }

    /// The core calls this when the blocking mispredicted branch resolves;
    /// fetch resumes at `resume_cycle` (resolution + redirect penalty).
    pub fn resume_after_redirect(&mut self, resume_cycle: u64) {
        debug_assert!(self.blocked_on_mispredict, "spurious redirect resume");
        self.blocked_on_mispredict = false;
        self.stall_until = self.stall_until.max(resume_cycle);
        self.runahead.on_redirect();
        // The redirect refetches from a new path; the fetch-line register
        // is stale.
        self.last_code_line = None;
    }

    /// True if fetch is currently blocked waiting for a branch.
    pub fn blocked(&self) -> bool {
        self.blocked_on_mispredict
    }

    /// The cycle fetch resumes after the current I-cache stall (0 when
    /// not stalled). Used by the skip-ahead event computation.
    pub fn stall_until(&self) -> u64 {
        self.stall_until
    }

    /// Bulk-accounts `n` stalled fetch cycles: the per-cycle loop counts
    /// one per stalled tick; the skip path adds the whole span at once.
    pub fn add_stall_cycles(&mut self, n: u64) {
        self.stats.icache_stall_cycles += n;
    }

    /// Fetches up to `fetch_width` µops at `cycle`, pushing
    /// `(op, mispredicted)` pairs in program order onto `out` (the
    /// core's fetch buffer — filled in place so the per-cycle path
    /// allocates nothing). Returns the number of µops fetched.
    pub fn fetch(
        &mut self,
        trace: &Trace,
        cycle: u64,
        hier: &mut CacheHierarchy,
        budget: usize,
        out: &mut VecDeque<(MicroOp, bool)>,
    ) -> usize {
        let mut pushed = 0;
        if self.blocked_on_mispredict || cycle < self.stall_until {
            if cycle < self.stall_until && !self.blocked_on_mispredict {
                self.stats.icache_stall_cycles += 1;
            }
            return pushed;
        }
        let width = self.fetch_width.min(budget);
        while pushed < width {
            let Some(op) = trace.ops().get(self.cursor) else {
                break;
            };
            let op = *op;

            // Instruction cache per code line.
            if !self.perfect_l1i {
                let line = op.pc.line();
                if self.last_code_line != Some(line) {
                    let outcome = hier.access(self.core_id, AccessKind::Code, line, cycle);
                    self.last_code_line = Some(line);
                    if outcome.hit_level != Level::L1 || outcome.merged_in_flight {
                        // Stall until the line arrives; re-fetch this op
                        // then (the line will hit).
                        self.stats.icache_misses += 1;
                        self.stall_until = outcome.ready_at(cycle);
                        if self.code_prefetch_enabled {
                            self.run_code_ahead(trace, line, cycle, hier);
                        }
                        break;
                    }
                }
            }

            self.cursor += 1;
            self.stats.fetched += 1;

            // Branches: predict, and block fetch on a mispredict.
            let mut mispredicted = false;
            if op.class == OpClass::Branch {
                if let Some(info) = op.branch {
                    mispredicted = self.predictor.predict_and_train(op.pc, info);
                }
                if mispredicted {
                    self.stats.mispredicts += 1;
                    self.blocked_on_mispredict = true;
                    out.push_back((op, true));
                    pushed += 1;
                    break;
                }
            }
            out.push_back((op, mispredicted));
            pushed += 1;
        }
        pushed
    }

    /// Functionally consumes one micro-op during a sampling fast-forward:
    /// advances the cursor and trains the branch predictor (keeping
    /// direction history and target tables warm), without touching fetch
    /// stall state or counters. Returns the op's code line the first time
    /// it differs from the previous op's, so the caller can warm the L1I
    /// (`None` under a perfect L1I).
    pub fn functional_step(&mut self, op: &MicroOp) -> Option<LineAddr> {
        self.cursor += 1;
        if op.class == OpClass::Branch {
            if let Some(info) = op.branch {
                let _ = self.predictor.predict_and_train(op.pc, info);
            }
        }
        if self.perfect_l1i {
            return None;
        }
        let line = op.pc.line();
        if self.last_code_line == Some(line) {
            None
        } else {
            self.last_code_line = Some(line);
            Some(line)
        }
    }

    /// Clears transient fetch state after a fast-forward so detailed
    /// simulation resumes cleanly: any in-progress I-cache stall or
    /// mispredict block belonged to ops that are now functionally retired.
    pub fn end_fast_forward(&mut self) {
        self.stall_until = 0;
        self.blocked_on_mispredict = false;
        self.runahead.on_redirect();
    }

    /// The CNPIP code runahead: while stalled on `miss_line`, walk the
    /// *predicted* future instruction stream and prefetch the code lines
    /// it crosses. The walk follows the trace (the correct path) but stops
    /// at the first conditional branch the predictor would get wrong and
    /// at indirect branches — beyond those the real CNPIP would diverge.
    fn run_code_ahead(
        &mut self,
        trace: &Trace,
        miss_line: LineAddr,
        cycle: u64,
        hier: &mut CacheHierarchy,
    ) {
        self.runahead_scratch.clear();
        let mut last = Some(miss_line);
        for op in trace.ops().iter().skip(self.cursor) {
            if self.runahead_scratch.len() >= self.runahead_lines * 2 {
                break;
            }
            let line = op.pc.line();
            if Some(line) != last {
                self.runahead_scratch.push(line);
                last = Some(line);
            }
            if op.class == OpClass::Branch {
                if let Some(info) = op.branch {
                    match info.kind {
                        catch_trace::BranchKind::Conditional => {
                            if self.predictor.peek_direction(op.pc) != info.taken {
                                break;
                            }
                        }
                        catch_trace::BranchKind::Indirect => break,
                        catch_trace::BranchKind::Direct => {}
                    }
                }
            }
        }
        for line in self
            .runahead
            .on_stall(miss_line, self.runahead_scratch.drain(..))
        {
            self.stats.code_prefetches += 1;
            let out = hier.access(self.core_id, AccessKind::CodePrefetch, line, cycle);
            self.runahead
                .note_issued(hier.wake_hints(), out.ready_at(cycle));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_cache::{FixedLatencyBackend, HierarchyConfig};
    use catch_trace::{ArchReg, TraceBuilder};

    fn hier() -> CacheHierarchy {
        CacheHierarchy::new(
            &HierarchyConfig::skylake_server(1),
            Box::new(FixedLatencyBackend::new(200)),
        )
    }

    fn straight_trace(n: usize) -> Trace {
        let mut b = TraceBuilder::new("t");
        for _ in 0..n {
            b.alu(ArchReg::new(1), &[]);
        }
        b.build()
    }

    #[test]
    fn first_fetch_misses_icache_and_stalls() {
        let trace = straight_trace(8);
        let mut h = hier();
        let mut f = Frontend::new(0, &CoreConfig::baseline());
        let mut out = VecDeque::new();
        let got = f.fetch(&trace, 0, &mut h, 16, &mut out);
        assert_eq!(got, 0, "cold I-miss stalls fetch");
        assert_eq!(f.stats().icache_misses, 1);
        // After the fill, fetch proceeds at full width.
        let got = f.fetch(&trace, 10_000, &mut h, 16, &mut out);
        assert_eq!(got, 4);
        assert_eq!(out.len(), 4);
        assert_eq!(f.stats().fetched, 4);
    }

    #[test]
    fn perfect_l1i_never_stalls() {
        let trace = straight_trace(8);
        let mut h = hier();
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let mut f = Frontend::new(0, &config);
        let mut out = VecDeque::new();
        let got = f.fetch(&trace, 0, &mut h, 16, &mut out);
        assert_eq!(got, 4);
        assert_eq!(f.stats().icache_misses, 0);
    }

    #[test]
    fn mispredicted_branch_blocks_fetch_until_resume() {
        // A data-dependent alternating branch mispredicts early.
        let mut b = TraceBuilder::new("t");
        for i in 0..8u64 {
            b.alu(ArchReg::new(1), &[]);
            let target = b.cursor().advance(8);
            b.cond_branch(i % 2 == 0, target, &[ArchReg::new(1)]);
        }
        let trace = b.build();
        let mut h = hier();
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let mut f = Frontend::new(0, &config);
        // Fetch until a mispredict blocks.
        let mut out = VecDeque::new();
        let mut fetched = 0;
        let mut cycle = 0;
        while !f.blocked() && fetched < 16 {
            fetched += f.fetch(&trace, cycle, &mut h, 4, &mut out);
            cycle += 1;
        }
        assert!(f.blocked(), "alternating branch must mispredict");
        assert_eq!(f.fetch(&trace, cycle, &mut h, 4, &mut out), 0);
        f.resume_after_redirect(cycle + 20);
        assert_eq!(f.fetch(&trace, cycle + 10, &mut h, 4, &mut out), 0);
        assert!(f.fetch(&trace, cycle + 20, &mut h, 4, &mut out) > 0);
    }

    #[test]
    fn code_runahead_prefetches_future_lines() {
        // Straight-line code spanning many lines.
        let trace = straight_trace(200);
        let mut h = hier();
        let mut config = CoreConfig::baseline();
        config.tact.code = true;
        let mut f = Frontend::new(0, &config);
        let mut out = VecDeque::new();
        let _ = f.fetch(&trace, 0, &mut h, 16, &mut out); // cold miss triggers runahead
        assert!(f.stats().code_prefetches > 0);
        // The prefetched next line should now be present or in flight.
        let second_line = trace.ops()[16].pc.line();
        assert!(h.probe_level(0, true, second_line) == Level::L1);
    }

    #[test]
    fn done_after_whole_trace() {
        let trace = straight_trace(5);
        let mut h = hier();
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let mut f = Frontend::new(0, &config);
        let mut out = VecDeque::new();
        let mut cycle = 0;
        while !f.done(&trace) {
            f.fetch(&trace, cycle, &mut h, 4, &mut out);
            cycle += 1;
        }
        assert_eq!(f.cursor(), 5);
    }
}
