//! The core's data-side memory interface: demand accesses, prefetcher
//! driving and the latency oracles.

use crate::config::{CoreConfig, LoadOracle};
use catch_cache::{AccessKind, CacheHierarchy, Level};
use catch_criticality::AnyDetector;
use catch_obs::{Event, EventClass, EventKind, Obs, ObsTactComponent};
use catch_prefetch::{
    MemoryImage, StreamPrefetcher, StridePrefetcher, TactComponent, TactPrefetcher,
};
use catch_trace::{MicroOp, Pc};

fn obs_component(component: TactComponent) -> ObsTactComponent {
    match component {
        TactComponent::Deep => ObsTactComponent::Deep,
        TactComponent::Cross => ObsTactComponent::Cross,
        TactComponent::Feeder => ObsTactComponent::Feeder,
    }
}

/// Counters kept by the memory interface.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand loads issued.
    pub loads: u64,
    /// Demand loads satisfied by store-to-load forwarding.
    pub forwarded: u64,
    /// Loads per hit level (L1, L2, LLC, memory).
    pub loads_by_level: [u64; 4],
    /// Loads whose latency an oracle converted.
    pub oracle_converted: u64,
    /// L1 stride prefetches issued.
    pub stride_prefetches: u64,
    /// Mid-level stream prefetches issued.
    pub stream_prefetches: u64,
    /// TACT data prefetches issued to the hierarchy.
    pub tact_prefetches: u64,
    /// Demand-load latency histogram; bucket upper bounds are
    /// [`MemStats::LATENCY_BUCKETS`] cycles (last bucket is unbounded).
    pub load_latency_hist: [u64; 6],
}

impl catch_trace::counters::Counters for MemStats {
    fn counters_into(&self, prefix: &str, out: &mut catch_trace::counters::CounterVec) {
        use catch_trace::counters::push_counter;
        push_counter(out, prefix, "loads", self.loads);
        push_counter(out, prefix, "forwarded", self.forwarded);
        for (i, name) in ["l1", "l2", "llc", "memory"].iter().enumerate() {
            push_counter(
                out,
                prefix,
                &format!("loads_{name}"),
                self.loads_by_level[i],
            );
        }
        push_counter(out, prefix, "oracle_converted", self.oracle_converted);
        push_counter(out, prefix, "stride_prefetches", self.stride_prefetches);
        push_counter(out, prefix, "stream_prefetches", self.stream_prefetches);
        push_counter(out, prefix, "tact_prefetches", self.tact_prefetches);
        for (i, v) in self.load_latency_hist.iter().enumerate() {
            push_counter(out, prefix, &format!("latency_bucket_{i}"), *v);
        }
    }
}

impl catch_trace::counters::FromCounters for MemStats {
    fn from_counters(
        prefix: &str,
        src: &mut catch_trace::counters::CounterSource,
    ) -> Result<Self, String> {
        let mut s = MemStats {
            loads: src.take(prefix, "loads")?,
            forwarded: src.take(prefix, "forwarded")?,
            ..MemStats::default()
        };
        for (i, name) in ["l1", "l2", "llc", "memory"].iter().enumerate() {
            s.loads_by_level[i] = src.take(prefix, &format!("loads_{name}"))?;
        }
        s.oracle_converted = src.take(prefix, "oracle_converted")?;
        s.stride_prefetches = src.take(prefix, "stride_prefetches")?;
        s.stream_prefetches = src.take(prefix, "stream_prefetches")?;
        s.tact_prefetches = src.take(prefix, "tact_prefetches")?;
        for (i, v) in s.load_latency_hist.iter_mut().enumerate() {
            *v = src.take(prefix, &format!("latency_bucket_{i}"))?;
        }
        Ok(s)
    }
}

impl MemStats {
    /// Upper bounds (inclusive, cycles) of [`MemStats::load_latency_hist`]
    /// buckets; the final bucket collects everything beyond.
    pub const LATENCY_BUCKETS: [u64; 5] = [5, 15, 40, 100, 250];

    /// Records a demand-load latency into the histogram.
    pub(crate) fn record_latency(&mut self, latency: u64) {
        let idx = Self::LATENCY_BUCKETS
            .iter()
            .position(|&b| latency <= b)
            .unwrap_or(Self::LATENCY_BUCKETS.len());
        self.load_latency_hist[idx] += 1;
    }

    /// Fraction of loads converted by the active oracle.
    pub fn converted_fraction(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.oracle_converted as f64 / self.loads as f64
        }
    }
}

/// Owns the data-side prefetchers and implements load/store access policy
/// for one core, including the paper's oracle studies.
#[derive(Debug)]
pub struct MemoryInterface {
    core_id: usize,
    oracle: LoadOracle,
    baseline_prefetchers: bool,
    tact_data: bool,
    demoted_memory_latency: u64,
    stride: StridePrefetcher,
    stream: StreamPrefetcher,
    tact: TactPrefetcher,
    image: MemoryImage,
    stats: MemStats,
    obs: Obs,
}

impl MemoryInterface {
    /// Creates the interface for `core_id` with the core's configuration
    /// and the trace-derived memory image.
    pub fn new(core_id: usize, config: &CoreConfig, image: MemoryImage) -> Self {
        MemoryInterface {
            core_id,
            oracle: config.oracle.clone(),
            baseline_prefetchers: config.baseline_prefetchers,
            tact_data: config.tact.data,
            demoted_memory_latency: config.demoted_memory_latency,
            stride: StridePrefetcher::new(256),
            stream: StreamPrefetcher::new(16, 2, 8),
            tact: TactPrefetcher::new(config.tact_config.clone()),
            image,
            stats: MemStats::default(),
            obs: Obs::off(),
        }
    }

    /// Attaches an observability handle; TACT trigger/target activity
    /// emits events through it. Detached by default.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Counters.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// TACT engine counters.
    pub fn tact_stats(&self) -> catch_prefetch::TactStats {
        self.tact.stats()
    }

    /// Propagates newly detected critical PCs to TACT.
    pub fn note_critical_pcs(&mut self, pcs: &[Pc]) {
        for &pc in pcs {
            self.tact.note_critical(pc);
        }
    }

    /// Register-flow tracking at allocation/rename (Feeder), in program
    /// order.
    pub fn on_alloc_op(&mut self, op: &MicroOp) {
        if self.tact_data {
            self.tact.on_op(op);
        }
    }

    /// Allocation-time feeder hint for a load (capture before
    /// [`MemoryInterface::on_alloc_op`] of the same op).
    pub fn feeder_hint(&self, op: &MicroOp) -> Option<(Pc, u64)> {
        if self.tact_data {
            self.tact.feeder_hint(op)
        } else {
            None
        }
    }

    /// Records a store-to-load forward (no hierarchy access).
    pub fn note_forwarded_load(&mut self) {
        self.stats.loads += 1;
        self.stats.forwarded += 1;
        self.stats.loads_by_level[0] += 1;
        self.stats.record_latency(2);
    }

    fn level_index(level: Level) -> usize {
        match level {
            Level::L1 => 0,
            Level::L2 => 1,
            Level::Llc => 2,
            Level::Memory => 3,
        }
    }

    /// Executes a demand load at `cycle`; returns `(latency, hit level)`.
    /// `feeder` is the allocation-time feeder hint for TACT training.
    pub fn load(
        &mut self,
        hier: &mut CacheHierarchy,
        op: &MicroOp,
        feeder: Option<(Pc, u64)>,
        cycle: u64,
        detector: &AnyDetector,
    ) -> (u64, Level) {
        let mem = op.mem.expect("loads reference memory");
        let line = mem.addr.line();
        self.stats.loads += 1;

        let outcome = hier.access(self.core_id, AccessKind::Load, line, cycle);
        let mut latency = outcome.latency;
        let level = outcome.hit_level;
        self.stats.loads_by_level[Self::level_index(level)] += 1;

        // Oracle adjustments.
        match &self.oracle {
            LoadOracle::None => {}
            LoadOracle::Demote {
                level: demoted,
                only_noncritical,
            } => {
                if level == *demoted
                    && !outcome.merged_in_flight
                    && (!only_noncritical || !detector.is_critical(op.pc))
                {
                    latency = self.demoted_latency(hier, *demoted);
                    self.stats.oracle_converted += 1;
                }
            }
            LoadOracle::CriticalPrefetch => {
                if matches!(level, Level::L2 | Level::Llc) && detector.is_critical(op.pc) {
                    latency = hier.level_latency(self.core_id, Level::L1);
                    self.stats.oracle_converted += 1;
                }
            }
            LoadOracle::PrefetchAll => {
                if matches!(level, Level::L2 | Level::Llc) {
                    latency = hier.level_latency(self.core_id, Level::L1);
                    self.stats.oracle_converted += 1;
                }
            }
        }

        self.stats.record_latency(latency);

        // Prefetchers observe the demand stream.
        if self.baseline_prefetchers {
            if let Some(pf_line) = self.stride.on_load(op.pc, mem.addr) {
                self.stats.stride_prefetches += 1;
                hier.access(self.core_id, AccessKind::L1Prefetch, pf_line, cycle);
            }
            if level != Level::L1 {
                for pf_line in self.stream.on_l1_miss(mem.addr) {
                    self.stats.stream_prefetches += 1;
                    hier.access(self.core_id, AccessKind::L2Prefetch, pf_line, cycle);
                }
            }
        }
        if self.tact_data {
            let addrs = self.tact.on_load_attributed(op, feeder, &self.image);
            if !addrs.is_empty() {
                self.obs.emit(EventClass::TACT, || Event {
                    cycle,
                    core: self.core_id as u32,
                    kind: EventKind::TactTrigger {
                        pc: op.pc.get(),
                        line: line.get(),
                    },
                });
            }
            let mut last_line = None;
            for (addr, component) in addrs {
                let pf_line = addr.line();
                if Some(pf_line) == last_line {
                    continue;
                }
                last_line = Some(pf_line);
                self.stats.tact_prefetches += 1;
                self.obs.emit(EventClass::TACT, || Event {
                    cycle,
                    core: self.core_id as u32,
                    kind: EventKind::TactTarget {
                        component: obs_component(component),
                        line: pf_line.get(),
                    },
                });
                let out = hier.access(self.core_id, AccessKind::TactPrefetch, pf_line, cycle);
                self.tact
                    .note_issued(hier.wake_hints(), out.ready_at(cycle));
            }
        }

        (latency, level)
    }

    /// Executes a demand store (write-allocate; the store buffer hides the
    /// latency from the core).
    pub fn store(&mut self, hier: &mut CacheHierarchy, op: &MicroOp, cycle: u64) {
        let mem = op.mem.expect("stores reference memory");
        hier.access(self.core_id, AccessKind::Store, mem.addr.line(), cycle);
    }

    fn demoted_latency(&self, hier: &CacheHierarchy, level: Level) -> u64 {
        match level {
            Level::L1 => hier.level_latency(self.core_id, Level::L2),
            Level::L2 => hier.level_latency(self.core_id, Level::Llc),
            Level::Llc | Level::Memory => {
                hier.level_latency(self.core_id, Level::Llc) + self.demoted_memory_latency
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_cache::{FixedLatencyBackend, HierarchyConfig};
    use catch_criticality::{CriticalityDetector, DetectorConfig};
    use catch_trace::{Addr, ArchReg};

    fn hier() -> CacheHierarchy {
        CacheHierarchy::new(
            &HierarchyConfig::skylake_server(1),
            Box::new(FixedLatencyBackend::new(200)),
        )
    }

    fn load_op(pc: u64, addr: u64) -> MicroOp {
        MicroOp::load(Pc::new(pc), ArchReg::new(1), Addr::new(addr), 0, &[])
    }

    fn iface(config: &CoreConfig) -> MemoryInterface {
        MemoryInterface::new(0, config, MemoryImage::new())
    }

    #[test]
    fn load_latency_reflects_hierarchy() {
        let mut h = hier();
        let mut m = iface(&CoreConfig::baseline());
        let det = AnyDetector::Graph(CriticalityDetector::new(DetectorConfig::paper()));
        let (miss_lat, level) = m.load(&mut h, &load_op(0x40, 0x1000), None, 0, &det);
        assert_eq!(level, Level::Memory);
        assert_eq!(miss_lat, 240);
        let (hit_lat, level) = m.load(&mut h, &load_op(0x40, 0x1000), None, 1000, &det);
        assert_eq!(level, Level::L1);
        assert_eq!(hit_lat, 5);
        assert_eq!(m.stats().loads, 2);
        assert_eq!(m.stats().loads_by_level[0], 1);
        assert_eq!(m.stats().loads_by_level[3], 1);
    }

    #[test]
    fn demote_all_l1_hits() {
        let mut h = hier();
        let mut config = CoreConfig::baseline();
        config.oracle = LoadOracle::Demote {
            level: Level::L1,
            only_noncritical: false,
        };
        config.baseline_prefetchers = false;
        let mut m = iface(&config);
        let det = AnyDetector::Graph(CriticalityDetector::new(DetectorConfig::paper()));
        m.load(&mut h, &load_op(0x40, 0x1000), None, 0, &det);
        let (lat, _) = m.load(&mut h, &load_op(0x40, 0x1000), None, 1000, &det);
        assert_eq!(lat, 15, "L1 hit must observe L2 latency");
        assert_eq!(m.stats().oracle_converted, 1);
        assert!(m.stats().converted_fraction() > 0.4);
    }

    #[test]
    fn prefetch_all_oracle_accelerates_l2_hits() {
        let mut h = hier();
        let mut config = CoreConfig::baseline();
        config.oracle = LoadOracle::PrefetchAll;
        config.baseline_prefetchers = false;
        let mut m = iface(&config);
        let det = AnyDetector::Graph(CriticalityDetector::new(DetectorConfig::paper()));
        // Install into L2 via stream prefetch path.
        h.access(0, AccessKind::L2Prefetch, Addr::new(0x4000).line(), 0);
        let (lat, level) = m.load(&mut h, &load_op(0x40, 0x4000), None, 100, &det);
        assert_eq!(level, Level::L2);
        assert_eq!(lat, 5, "oracle converts the L2 hit to L1 latency");
    }

    #[test]
    fn stride_prefetcher_fires_through_interface() {
        let mut h = hier();
        let mut m = iface(&CoreConfig::baseline());
        let det = AnyDetector::Graph(CriticalityDetector::new(DetectorConfig::paper()));
        for i in 0..8u64 {
            m.load(&mut h, &load_op(0x40, i * 64), None, i * 10, &det);
        }
        assert!(m.stats().stride_prefetches > 0);
    }

    #[test]
    fn store_allocates_line() {
        let mut h = hier();
        let mut m = iface(&CoreConfig::baseline());
        let op = MicroOp::store(Pc::new(0x44), Addr::new(0x2000), &[ArchReg::new(1)]);
        m.store(&mut h, &op, 0);
        assert_eq!(h.probe_level(0, false, Addr::new(0x2000).line()), Level::L1);
    }
}
