//! Branch prediction: gshare direction predictor + last-target indirect
//! predictor.

use catch_trace::{BranchInfo, BranchKind, Pc};

/// Counters for the branch unit.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional branches predicted.
    pub conditional: u64,
    /// Conditional direction mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect branches predicted.
    pub indirect: u64,
    /// Indirect target mispredictions.
    pub indirect_mispredicts: u64,
}

impl catch_trace::counters::Counters for BranchStats {
    fn counters_into(&self, prefix: &str, out: &mut catch_trace::counters::CounterVec) {
        use catch_trace::counters::push_counter;
        push_counter(out, prefix, "conditional", self.conditional);
        push_counter(out, prefix, "cond_mispredicts", self.cond_mispredicts);
        push_counter(out, prefix, "indirect", self.indirect);
        push_counter(
            out,
            prefix,
            "indirect_mispredicts",
            self.indirect_mispredicts,
        );
    }
}

impl catch_trace::counters::FromCounters for BranchStats {
    fn from_counters(
        prefix: &str,
        src: &mut catch_trace::counters::CounterSource,
    ) -> Result<Self, String> {
        Ok(BranchStats {
            conditional: src.take(prefix, "conditional")?,
            cond_mispredicts: src.take(prefix, "cond_mispredicts")?,
            indirect: src.take(prefix, "indirect")?,
            indirect_mispredicts: src.take(prefix, "indirect_mispredicts")?,
        })
    }
}

impl BranchStats {
    /// Overall misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        let total = self.conditional + self.indirect;
        if total == 0 {
            0.0
        } else {
            (self.cond_mispredicts + self.indirect_mispredicts) as f64 / total as f64
        }
    }
}

/// Gshare direction predictor plus a last-target table for indirect
/// branches. Direct unconditional branches always predict correctly.
#[derive(Debug)]
pub struct BranchUnit {
    history: u64,
    history_bits: u32,
    counters: Vec<u8>,
    targets: Vec<Option<(u64, Pc)>>,
    stats: BranchStats,
}

impl BranchUnit {
    /// Creates a predictor with `2^table_bits` 2-bit counters and
    /// `history_bits` of global history.
    pub fn new(table_bits: u32, history_bits: u32) -> Self {
        BranchUnit {
            history: 0,
            history_bits,
            counters: vec![1; 1 << table_bits],
            targets: vec![None; 1024],
            stats: BranchStats::default(),
        }
    }

    /// Default geometry (16K counters, 12 bits of history).
    pub fn skylake_like() -> Self {
        BranchUnit::new(14, 12)
    }

    /// Counters.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }

    fn index(&self, pc: Pc) -> usize {
        let mask = self.counters.len() as u64 - 1;
        (((pc.get() >> 2) ^ (self.history & ((1 << self.history_bits) - 1))) & mask) as usize
    }

    /// Predicted direction without updating state (used by the code
    /// runahead to decide how far it may safely walk).
    pub fn peek_direction(&self, pc: Pc) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Predicts and trains on a branch; returns `true` if mispredicted.
    pub fn predict_and_train(&mut self, pc: Pc, info: BranchInfo) -> bool {
        match info.kind {
            BranchKind::Direct => false,
            BranchKind::Conditional => {
                self.stats.conditional += 1;
                let idx = self.index(pc);
                let predicted = self.counters[idx] >= 2;
                // Train counter.
                if info.taken {
                    self.counters[idx] = (self.counters[idx] + 1).min(3);
                } else {
                    self.counters[idx] = self.counters[idx].saturating_sub(1);
                }
                // Update history.
                self.history = (self.history << 1) | u64::from(info.taken);
                let wrong = predicted != info.taken;
                if wrong {
                    self.stats.cond_mispredicts += 1;
                }
                wrong
            }
            BranchKind::Indirect => {
                self.stats.indirect += 1;
                let slot = (pc.get() / 4 % self.targets.len() as u64) as usize;
                let predicted = self.targets[slot]
                    .filter(|(tag, _)| *tag == pc.get())
                    .map(|(_, t)| t);
                self.targets[slot] = Some((pc.get(), info.target));
                let wrong = predicted != Some(info.target);
                if wrong {
                    self.stats.indirect_mispredicts += 1;
                }
                wrong
            }
        }
    }
}

impl Default for BranchUnit {
    fn default() -> Self {
        BranchUnit::skylake_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(taken: bool) -> BranchInfo {
        BranchInfo {
            taken,
            target: Pc::new(0x100),
            kind: BranchKind::Conditional,
        }
    }

    #[test]
    fn learns_biased_branch() {
        let mut b = BranchUnit::skylake_like();
        let pc = Pc::new(0x40);
        // Always-taken loop branch: after warm-up (history register must
        // fill with the taken pattern first), no mispredicts.
        for _ in 0..20 {
            b.predict_and_train(pc, cond(true));
        }
        let before = b.stats().cond_mispredicts;
        for _ in 0..100 {
            b.predict_and_train(pc, cond(true));
        }
        assert_eq!(b.stats().cond_mispredicts, before);
    }

    #[test]
    fn random_branch_mispredicts_sometimes() {
        let mut b = BranchUnit::skylake_like();
        let pc = Pc::new(0x40);
        let mut x = 0x12345u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            b.predict_and_train(pc, cond(x >> 63 == 1));
        }
        assert!(b.stats().mispredict_rate() > 0.2);
    }

    #[test]
    fn direct_branches_never_mispredict() {
        let mut b = BranchUnit::skylake_like();
        let info = BranchInfo {
            taken: true,
            target: Pc::new(0x99),
            kind: BranchKind::Direct,
        };
        assert!(!b.predict_and_train(Pc::new(0x10), info));
        assert_eq!(b.stats().mispredict_rate(), 0.0);
    }

    #[test]
    fn indirect_learns_stable_target() {
        let mut b = BranchUnit::skylake_like();
        let pc = Pc::new(0x10);
        let info = BranchInfo {
            taken: true,
            target: Pc::new(0x500),
            kind: BranchKind::Indirect,
        };
        assert!(b.predict_and_train(pc, info)); // cold miss
        assert!(!b.predict_and_train(pc, info)); // learned
                                                 // Target change mispredicts once.
        let other = BranchInfo {
            target: Pc::new(0x900),
            ..info
        };
        assert!(b.predict_and_train(pc, other));
        assert!(!b.predict_and_train(pc, other));
    }

    #[test]
    fn peek_does_not_train() {
        let b = BranchUnit::skylake_like();
        let before = b.counters.clone();
        let _ = b.peek_direction(Pc::new(0x40));
        assert_eq!(b.counters, before);
    }
}
