//! Cycle-level out-of-order core model.
//!
//! Models a Skylake-like core (4-wide, 224-entry ROB, 3.2 GHz) executing a
//! retired-path trace against the `catch-cache` hierarchy:
//!
//! * **Front end** ([`Frontend`]): in-order fetch with a gshare branch
//!   predictor and L1I accesses; an L1I miss stalls fetch, optionally
//!   triggering the TACT code-runahead prefetcher; a mispredicted branch
//!   blocks fetch until it resolves plus a redirect penalty.
//! * **Back end** ([`Core`]): in-order allocation into the ROB, age-ordered
//!   scheduling with per-class execution-port limits, loads/stores against
//!   the hierarchy with store-to-load forwarding, in-order retirement.
//! * **Criticality & TACT**: retired instructions feed the
//!   `catch-criticality` detector; detected critical PCs arm the TACT
//!   prefetchers which inject L1 prefetches on load execution.
//! * **Oracles** ([`LoadOracle`]): the latency-demotion and zero-time
//!   prefetch oracles behind the paper's Figures 4 and 5.
//!
//! # Example
//!
//! ```
//! use catch_cpu::{Core, CoreConfig};
//! use catch_cache::{CacheHierarchy, HierarchyConfig, FixedLatencyBackend};
//! use catch_trace::{TraceBuilder, ArchReg, Addr};
//!
//! let mut b = TraceBuilder::new("demo");
//! for i in 0..100u64 {
//!     b.load(ArchReg::new(1), Addr::new(i * 64), 0);
//!     b.alu(ArchReg::new(2), &[ArchReg::new(1)]);
//! }
//! let trace = b.build();
//!
//! let hcfg = HierarchyConfig::skylake_server(1);
//! let mut hier = CacheHierarchy::new(&hcfg, Box::new(FixedLatencyBackend::new(200)));
//! let mut core = Core::new(0, trace, CoreConfig::default());
//! let stats = core.run_to_completion(&mut hier);
//! assert_eq!(stats.instructions, 200);
//! // Everything is cold (code and data fetch from DRAM), so the IPC of
//! // this tiny straight-line kernel is low but non-zero.
//! assert!(stats.ipc() > 0.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod config;
mod core;
mod frontend;
mod lite;
mod memory;
mod rob;
mod stats;

pub use branch::BranchUnit;
pub use catch_timeq::Engine;
pub use config::{CoreConfig, DetectorKind, ExecLatencies, LoadOracle, PortConfig, TactMode};
pub use core::Core;
pub use frontend::Frontend;
pub use lite::{run_fast_functional, LiteCore};
pub use memory::MemoryInterface;
pub use rob::{Rob, RobEntry};
pub use stats::CoreStats;
