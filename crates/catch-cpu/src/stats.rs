//! Per-core run statistics.

use crate::branch::BranchStats;
use crate::frontend::FrontendStats;
use crate::memory::MemStats;
use catch_criticality::DetectorStats;
use catch_prefetch::TactStats;
use std::fmt;

/// Everything measured over one core's run.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct CoreStats {
    /// Instructions (µops) retired.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Front-end counters.
    pub frontend: FrontendStats,
    /// Branch counters.
    pub branches: BranchStats,
    /// Memory-interface counters.
    pub memory: MemStats,
    /// Criticality-detector counters.
    pub detector: DetectorStats,
    /// TACT counters.
    pub tact: TactStats,
}

impl catch_trace::counters::Counters for CoreStats {
    fn counters_into(&self, prefix: &str, out: &mut catch_trace::counters::CounterVec) {
        use catch_trace::counters::{join_prefix, push_counter};
        push_counter(out, prefix, "instructions", self.instructions);
        push_counter(out, prefix, "cycles", self.cycles);
        self.frontend
            .counters_into(&join_prefix(prefix, "frontend"), out);
        self.branches
            .counters_into(&join_prefix(prefix, "branches"), out);
        self.memory
            .counters_into(&join_prefix(prefix, "memory"), out);
        self.detector
            .counters_into(&join_prefix(prefix, "detector"), out);
        self.tact.counters_into(&join_prefix(prefix, "tact"), out);
    }
}

impl CoreStats {
    /// Counter-wise difference `self - earlier`, used to exclude a
    /// warm-up phase from measurement. All counters are monotonic, so the
    /// result is a valid stats snapshot of the interval.
    pub fn minus(&self, earlier: &CoreStats) -> CoreStats {
        self.zip(earlier, |a, b| a.saturating_sub(b))
    }

    /// Accumulates `weight` copies of `delta` into `self` (saturating).
    /// Sampled runs use this to reconstruct full-trace statistics from
    /// weighted per-interval deltas; integer weights keep the
    /// reconstruction exact when every weight is 1.
    pub fn add_scaled(&mut self, delta: &CoreStats, weight: u64) {
        *self = self.zip(delta, |a, d| a.saturating_add(d.saturating_mul(weight)));
    }

    /// Combines two snapshots counter-by-counter with `f`.
    fn zip(&self, earlier: &CoreStats, f: impl Fn(u64, u64) -> u64 + Copy) -> CoreStats {
        use crate::frontend::FrontendStats;
        use crate::memory::MemStats;
        CoreStats {
            instructions: f(self.instructions, earlier.instructions),
            cycles: f(self.cycles, earlier.cycles),
            frontend: FrontendStats {
                fetched: f(self.frontend.fetched, earlier.frontend.fetched),
                icache_misses: f(self.frontend.icache_misses, earlier.frontend.icache_misses),
                code_prefetches: f(
                    self.frontend.code_prefetches,
                    earlier.frontend.code_prefetches,
                ),
                mispredicts: f(self.frontend.mispredicts, earlier.frontend.mispredicts),
                icache_stall_cycles: f(
                    self.frontend.icache_stall_cycles,
                    earlier.frontend.icache_stall_cycles,
                ),
            },
            branches: BranchStats {
                conditional: f(self.branches.conditional, earlier.branches.conditional),
                cond_mispredicts: f(
                    self.branches.cond_mispredicts,
                    earlier.branches.cond_mispredicts,
                ),
                indirect: f(self.branches.indirect, earlier.branches.indirect),
                indirect_mispredicts: f(
                    self.branches.indirect_mispredicts,
                    earlier.branches.indirect_mispredicts,
                ),
            },
            memory: MemStats {
                loads: f(self.memory.loads, earlier.memory.loads),
                forwarded: f(self.memory.forwarded, earlier.memory.forwarded),
                loads_by_level: [
                    f(
                        self.memory.loads_by_level[0],
                        earlier.memory.loads_by_level[0],
                    ),
                    f(
                        self.memory.loads_by_level[1],
                        earlier.memory.loads_by_level[1],
                    ),
                    f(
                        self.memory.loads_by_level[2],
                        earlier.memory.loads_by_level[2],
                    ),
                    f(
                        self.memory.loads_by_level[3],
                        earlier.memory.loads_by_level[3],
                    ),
                ],
                oracle_converted: f(
                    self.memory.oracle_converted,
                    earlier.memory.oracle_converted,
                ),
                stride_prefetches: f(
                    self.memory.stride_prefetches,
                    earlier.memory.stride_prefetches,
                ),
                stream_prefetches: f(
                    self.memory.stream_prefetches,
                    earlier.memory.stream_prefetches,
                ),
                tact_prefetches: f(self.memory.tact_prefetches, earlier.memory.tact_prefetches),
                load_latency_hist: std::array::from_fn(|i| {
                    f(
                        self.memory.load_latency_hist[i],
                        earlier.memory.load_latency_hist[i],
                    )
                }),
            },
            detector: DetectorStats {
                retired: f(self.detector.retired, earlier.detector.retired),
                walks: f(self.detector.walks, earlier.detector.walks),
                critical_load_observations: f(
                    self.detector.critical_load_observations,
                    earlier.detector.critical_load_observations,
                ),
                walk_steps: f(self.detector.walk_steps, earlier.detector.walk_steps),
                relearns: f(self.detector.relearns, earlier.detector.relearns),
                overflows: f(self.detector.overflows, earlier.detector.overflows),
            },
            tact: TactStats {
                targets_allocated: f(self.tact.targets_allocated, earlier.tact.targets_allocated),
                deep_issued: f(self.tact.deep_issued, earlier.tact.deep_issued),
                cross_issued: f(self.tact.cross_issued, earlier.tact.cross_issued),
                feeder_issued: f(self.tact.feeder_issued, earlier.tact.feeder_issued),
                cross_learned: f(self.tact.cross_learned, earlier.tact.cross_learned),
                feeder_learned: f(self.tact.feeder_learned, earlier.tact.feeder_learned),
            },
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L1 hit rate over demand loads.
    pub fn l1_load_hit_rate(&self) -> f64 {
        if self.memory.loads == 0 {
            0.0
        } else {
            self.memory.loads_by_level[0] as f64 / self.memory.loads as f64
        }
    }
}

impl fmt::Display for CoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IPC {:.3} ({} inst / {} cyc), L1 load hit {:.1}%, {} icache misses, {:.2}% br-miss",
            self.ipc(),
            self.instructions,
            self.cycles,
            100.0 * self.l1_load_hit_rate(),
            self.frontend.icache_misses,
            100.0 * self.branches.mispredict_rate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn ipc_computes() {
        let s = CoreStats {
            instructions: 300,
            cycles: 100,
            ..Default::default()
        };
        assert!((s.ipc() - 3.0).abs() < 1e-12);
    }
}
