//! Per-core run statistics.

use crate::branch::BranchStats;
use crate::frontend::FrontendStats;
use crate::memory::MemStats;
use catch_criticality::DetectorStats;
use catch_obs::OccupancyHist;
use catch_prefetch::TactStats;
use catch_trace::counters::monotonic_delta;
use std::fmt;

/// Everything measured over one core's run.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct CoreStats {
    /// Instructions (µops) retired.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Front-end counters.
    pub frontend: FrontendStats,
    /// Branch counters.
    pub branches: BranchStats,
    /// Memory-interface counters.
    pub memory: MemStats,
    /// Criticality-detector counters.
    pub detector: DetectorStats,
    /// TACT counters.
    pub tact: TactStats,
    /// ROB occupancy, sampled every `catch_obs::OCC_SAMPLE_PERIOD` cycles.
    pub rob_occ: OccupancyHist,
    /// Scheduler pressure (allocated-but-unissued ops, clamped to the
    /// scheduling window), same cadence.
    pub sched_occ: OccupancyHist,
    /// Load-MSHR occupancy (outstanding load fills), same cadence.
    pub mshr_occ: OccupancyHist,
}

impl catch_trace::counters::Counters for CoreStats {
    fn counters_into(&self, prefix: &str, out: &mut catch_trace::counters::CounterVec) {
        use catch_trace::counters::{join_prefix, push_counter};
        push_counter(out, prefix, "instructions", self.instructions);
        push_counter(out, prefix, "cycles", self.cycles);
        self.frontend
            .counters_into(&join_prefix(prefix, "frontend"), out);
        self.branches
            .counters_into(&join_prefix(prefix, "branches"), out);
        self.memory
            .counters_into(&join_prefix(prefix, "memory"), out);
        self.detector
            .counters_into(&join_prefix(prefix, "detector"), out);
        self.tact.counters_into(&join_prefix(prefix, "tact"), out);
        self.rob_occ
            .counters_into(&join_prefix(prefix, "rob_occ"), out);
        self.sched_occ
            .counters_into(&join_prefix(prefix, "sched_occ"), out);
        self.mshr_occ
            .counters_into(&join_prefix(prefix, "mshr_occ"), out);
    }
}

impl catch_trace::counters::FromCounters for CoreStats {
    fn from_counters(
        prefix: &str,
        src: &mut catch_trace::counters::CounterSource,
    ) -> Result<Self, String> {
        use catch_trace::counters::join_prefix;
        Ok(CoreStats {
            instructions: src.take(prefix, "instructions")?,
            cycles: src.take(prefix, "cycles")?,
            frontend: FrontendStats::from_counters(&join_prefix(prefix, "frontend"), src)?,
            branches: BranchStats::from_counters(&join_prefix(prefix, "branches"), src)?,
            memory: MemStats::from_counters(&join_prefix(prefix, "memory"), src)?,
            detector: DetectorStats::from_counters(&join_prefix(prefix, "detector"), src)?,
            tact: TactStats::from_counters(&join_prefix(prefix, "tact"), src)?,
            rob_occ: OccupancyHist::from_counters(&join_prefix(prefix, "rob_occ"), src)?,
            sched_occ: OccupancyHist::from_counters(&join_prefix(prefix, "sched_occ"), src)?,
            mshr_occ: OccupancyHist::from_counters(&join_prefix(prefix, "mshr_occ"), src)?,
        })
    }
}

impl CoreStats {
    /// Counter-wise difference `self - earlier`, used to exclude a
    /// warm-up phase from measurement. All counters are monotonic, so the
    /// result is a valid stats snapshot of the interval; debug builds
    /// assert that (see `catch_trace::counters::monotonic_delta`).
    pub fn minus(&self, earlier: &CoreStats) -> CoreStats {
        let mut out = self.zip(earlier, monotonic_delta);
        out.rob_occ = self.rob_occ.minus(&earlier.rob_occ);
        out.sched_occ = self.sched_occ.minus(&earlier.sched_occ);
        out.mshr_occ = self.mshr_occ.minus(&earlier.mshr_occ);
        out
    }

    /// Accumulates `weight` copies of `delta` into `self` (saturating).
    /// Sampled runs use this to reconstruct full-trace statistics from
    /// weighted per-interval deltas; integer weights keep the
    /// reconstruction exact when every weight is 1.
    pub fn add_scaled(&mut self, delta: &CoreStats, weight: u64) {
        let mut rob_occ = self.rob_occ;
        let mut sched_occ = self.sched_occ;
        let mut mshr_occ = self.mshr_occ;
        rob_occ.add_scaled(&delta.rob_occ, weight);
        sched_occ.add_scaled(&delta.sched_occ, weight);
        mshr_occ.add_scaled(&delta.mshr_occ, weight);
        *self = self.zip(delta, |a, d| a.saturating_add(d.saturating_mul(weight)));
        self.rob_occ = rob_occ;
        self.sched_occ = sched_occ;
        self.mshr_occ = mshr_occ;
    }

    /// Combines the scalar counters counter-by-counter with `f`; the
    /// occupancy histograms are carried from `self` and combined
    /// explicitly by the callers.
    fn zip(&self, earlier: &CoreStats, f: impl Fn(u64, u64) -> u64 + Copy) -> CoreStats {
        use crate::frontend::FrontendStats;
        use crate::memory::MemStats;
        CoreStats {
            instructions: f(self.instructions, earlier.instructions),
            cycles: f(self.cycles, earlier.cycles),
            frontend: FrontendStats {
                fetched: f(self.frontend.fetched, earlier.frontend.fetched),
                icache_misses: f(self.frontend.icache_misses, earlier.frontend.icache_misses),
                code_prefetches: f(
                    self.frontend.code_prefetches,
                    earlier.frontend.code_prefetches,
                ),
                mispredicts: f(self.frontend.mispredicts, earlier.frontend.mispredicts),
                icache_stall_cycles: f(
                    self.frontend.icache_stall_cycles,
                    earlier.frontend.icache_stall_cycles,
                ),
            },
            branches: BranchStats {
                conditional: f(self.branches.conditional, earlier.branches.conditional),
                cond_mispredicts: f(
                    self.branches.cond_mispredicts,
                    earlier.branches.cond_mispredicts,
                ),
                indirect: f(self.branches.indirect, earlier.branches.indirect),
                indirect_mispredicts: f(
                    self.branches.indirect_mispredicts,
                    earlier.branches.indirect_mispredicts,
                ),
            },
            memory: MemStats {
                loads: f(self.memory.loads, earlier.memory.loads),
                forwarded: f(self.memory.forwarded, earlier.memory.forwarded),
                loads_by_level: [
                    f(
                        self.memory.loads_by_level[0],
                        earlier.memory.loads_by_level[0],
                    ),
                    f(
                        self.memory.loads_by_level[1],
                        earlier.memory.loads_by_level[1],
                    ),
                    f(
                        self.memory.loads_by_level[2],
                        earlier.memory.loads_by_level[2],
                    ),
                    f(
                        self.memory.loads_by_level[3],
                        earlier.memory.loads_by_level[3],
                    ),
                ],
                oracle_converted: f(
                    self.memory.oracle_converted,
                    earlier.memory.oracle_converted,
                ),
                stride_prefetches: f(
                    self.memory.stride_prefetches,
                    earlier.memory.stride_prefetches,
                ),
                stream_prefetches: f(
                    self.memory.stream_prefetches,
                    earlier.memory.stream_prefetches,
                ),
                tact_prefetches: f(self.memory.tact_prefetches, earlier.memory.tact_prefetches),
                load_latency_hist: std::array::from_fn(|i| {
                    f(
                        self.memory.load_latency_hist[i],
                        earlier.memory.load_latency_hist[i],
                    )
                }),
            },
            detector: DetectorStats {
                retired: f(self.detector.retired, earlier.detector.retired),
                walks: f(self.detector.walks, earlier.detector.walks),
                critical_load_observations: f(
                    self.detector.critical_load_observations,
                    earlier.detector.critical_load_observations,
                ),
                walk_steps: f(self.detector.walk_steps, earlier.detector.walk_steps),
                relearns: f(self.detector.relearns, earlier.detector.relearns),
                overflows: f(self.detector.overflows, earlier.detector.overflows),
            },
            tact: TactStats {
                targets_allocated: f(self.tact.targets_allocated, earlier.tact.targets_allocated),
                deep_issued: f(self.tact.deep_issued, earlier.tact.deep_issued),
                cross_issued: f(self.tact.cross_issued, earlier.tact.cross_issued),
                feeder_issued: f(self.tact.feeder_issued, earlier.tact.feeder_issued),
                cross_learned: f(self.tact.cross_learned, earlier.tact.cross_learned),
                feeder_learned: f(self.tact.feeder_learned, earlier.tact.feeder_learned),
            },
            rob_occ: self.rob_occ,
            sched_occ: self.sched_occ,
            mshr_occ: self.mshr_occ,
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L1 hit rate over demand loads.
    pub fn l1_load_hit_rate(&self) -> f64 {
        if self.memory.loads == 0 {
            0.0
        } else {
            self.memory.loads_by_level[0] as f64 / self.memory.loads as f64
        }
    }
}

impl fmt::Display for CoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IPC {:.3} ({} inst / {} cyc), L1 load hit {:.1}%, {} icache misses, {:.2}% br-miss",
            self.ipc(),
            self.instructions,
            self.cycles,
            100.0 * self.l1_load_hit_rate(),
            self.frontend.icache_misses,
            100.0 * self.branches.mispredict_rate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn ipc_computes() {
        let s = CoreStats {
            instructions: 300,
            cycles: 100,
            ..Default::default()
        };
        assert!((s.ipc() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn minus_and_add_scaled_carry_occupancy_hists() {
        let mut early = CoreStats::default();
        early.rob_occ.record(10, 224);
        let mut late = early;
        late.instructions = 100;
        late.cycles = 50;
        late.rob_occ.record(200, 224);
        late.sched_occ.record(30, 97);
        let d = late.minus(&early);
        assert_eq!(d.instructions, 100);
        assert_eq!(d.rob_occ.samples, 1);
        assert_eq!(d.rob_occ.sum, 200);
        assert_eq!(d.sched_occ.samples, 1);
        let mut acc = CoreStats::default();
        acc.add_scaled(&d, 3);
        assert_eq!(acc.instructions, 300);
        assert_eq!(acc.rob_occ.samples, 3);
        assert_eq!(acc.rob_occ.sum, 600);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-monotonic")]
    fn minus_rejects_shrinking_core_counters() {
        let early = CoreStats {
            cycles: 9,
            ..Default::default()
        };
        let _ = CoreStats::default().minus(&early);
    }
}
