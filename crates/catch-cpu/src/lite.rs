//! The timing-lite core: an in-order-issue scoreboard model.
//!
//! [`LiteCore`] is the middle rung of the fidelity ladder (DESIGN.md
//! §14): it drives the **real** memory hierarchy, branch predictor,
//! criticality detector and TACT prefetchers through the same
//! [`Frontend`] and [`MemoryInterface`] as the full [`Core`], but
//! replaces the out-of-order back end (ROB dependence graph, wake heap,
//! scheduler window scan, rollback bookkeeping) with a per-register
//! **completion-timestamp scoreboard**:
//!
//! * Ops issue strictly in program order, up to `alloc_width` per cycle
//!   under the per-class port budgets. An op never waits for its
//!   operands at issue — its completion cycle is *computed* as
//!   `max(issue cycle, operand ready cycles) + latency`, which models an
//!   idealised out-of-order machine with perfect scheduling (the classic
//!   interval-simulation approximation).
//! * The reorder window is enforced by a ring of in-order retire
//!   timestamps: op *n* cannot issue before op *n − rob_size* has
//!   retired, and at most `retire_width` ops retire per cycle. Long
//!   dependence chains therefore stall issue exactly as a full window
//!   would, without per-entry bookkeeping.
//! * The scheduler window is a dataflow constraint, not an issue gate:
//!   the full core only selects from the oldest `sched_window` ROB
//!   entries, so op *n* cannot begin execution before op
//!   *n − sched_window* retires. The lite model lifts each op's
//!   operand-ready time to that retire timestamp (read straight from
//!   the retire ring, like retire pacing). This is what bounds
//!   memory-level parallelism on pointer-chasing code — without it the
//!   lite model would let independent misses far behind a long
//!   dependence chain proceed that the full core's scheduler window
//!   would have fenced off.
//! * Loads take the real demand path ([`MemoryInterface::load`] with
//!   prefetchers, TACT and the detector), are bounded by the real MSHR
//!   cap, and forward from in-flight stores at the same 2-cycle latency
//!   as the full core. Mispredicted branches block fetch until their
//!   computed resolution plus the redirect penalty.
//! * Retired ops feed the criticality detector in program order with
//!   their computed execution latencies, and critical PCs sync to TACT
//!   at the same cadence as the full core.
//!
//! The model intentionally omits: speculative wrong-path execution,
//! scheduler-window and port *conflict* modelling beyond per-cycle
//! budgets, and exact access timestamps for dependent loads (a load is
//! presented to the hierarchy at its issue cycle even when its operands
//! are ready later). The `ladder` experiment in `catch-core` measures
//! the resulting IPC/MPKI error against the full core per workload and
//! CI gates on the bound.
//!
//! Like [`Core`], the lite core supports both cycle engines: the naive
//! per-cycle tick loop and the `timeq` calendar queue with stall
//! skip-ahead. Blocked gates (window full, MSHR full, fetch stall,
//! mispredict redirect) post their wake cycles, so idle spans collapse
//! to O(1) queue peeks.

use crate::config::CoreConfig;
use crate::core::{CRITICAL_SYNC_INTERVAL, MAINT_PERIOD};
use crate::frontend::Frontend;
use crate::memory::MemoryInterface;
use crate::stats::CoreStats;
use crate::Core;
use catch_cache::{CacheHierarchy, Level};
use catch_criticality::{AnyDetector, CriticalityDetector, HeuristicDetector, RetiredInst};
use catch_obs::{Event, EventClass, EventKind, Obs, OccupancyHist, OCC_SAMPLE_PERIOD};
use catch_prefetch::MemoryImage;
use catch_timeq::{CalendarQueue, Engine, ServiceRequest, Source};
use catch_trace::hash::FxHashMap;
use catch_trace::{ArchReg, MicroOp, OpClass, Trace};
use std::collections::VecDeque;

/// The timing-lite in-order-issue core (see the module docs).
#[derive(Debug)]
pub struct LiteCore {
    id: usize,
    config: CoreConfig,
    trace: Trace,
    frontend: Frontend,
    fetch_buffer: VecDeque<(MicroOp, bool)>,
    mem: MemoryInterface,
    detector: AnyDetector,
    /// Program-order op id (producer ids for the detector feed).
    next_id: u64,
    /// Scoreboard: id of the last writer of each architectural register.
    last_writer: [Option<u64>; ArchReg::COUNT],
    /// Scoreboard: cycle the last write of each register completes.
    reg_ready: [u64; ArchReg::COUNT],
    /// In-flight stores by 8-byte-aligned address: (id, completion).
    last_store: FxHashMap<u64, (u64, u64)>,
    /// In-order retire timestamps of the ops currently in the window
    /// (bounded by `rob_size`); the front entry gates issue of op
    /// *n − rob_size*.
    window: VecDeque<u64>,
    /// Execution-start cycles of recently issued ops, kept only for
    /// scheduler-occupancy sampling (an op holds a scheduler slot until
    /// its operands arrive). Pruned at every sample.
    sched_ring: Vec<u64>,
    /// Completion cycles of loads outstanding to the hierarchy (the
    /// L1D MSHR file), pruned lazily like the full core's.
    outstanding_loads: Vec<u64>,
    cycle: u64,
    retired: u64,
    /// Latest computed retire timestamp (the run's critical path).
    last_retire: u64,
    critical_sync_at: u64,
    warmup_snapshot: Option<CoreStats>,
    obs: Obs,
    timeq: CalendarQueue,
    use_timeq: bool,
    /// Window occupancy (in-flight, unretired ops), sampled every
    /// [`OCC_SAMPLE_PERIOD`] cycles — the lite analogue of ROB occupancy.
    rob_occ: OccupancyHist,
    /// Fetch-buffer pressure clamped to the scheduler window, same
    /// cadence (the lite analogue of scheduler occupancy).
    sched_occ: OccupancyHist,
    /// Load-MSHR occupancy, same cadence (identical semantics to the
    /// full core's histogram).
    mshr_occ: OccupancyHist,
}

impl LiteCore {
    /// Creates a lite core for `trace` with the given configuration.
    pub fn new(id: usize, trace: Trace, config: CoreConfig) -> Self {
        let image = MemoryImage::from_trace(&trace);
        let use_timeq = config.engine == Engine::TimeQ && config.skip_ahead;
        LiteCore {
            id,
            frontend: Frontend::new(id, &config),
            fetch_buffer: VecDeque::with_capacity(config.fetch_buffer),
            mem: MemoryInterface::new(id, &config, image),
            detector: match &config.detector_kind {
                crate::config::DetectorKind::Graph => {
                    AnyDetector::Graph(CriticalityDetector::new(config.detector.clone()))
                }
                crate::config::DetectorKind::Heuristic(h) => AnyDetector::Heuristic(
                    HeuristicDetector::new(config.detector.clone(), h.clone()),
                ),
            },
            next_id: 0,
            last_writer: [None; ArchReg::COUNT],
            reg_ready: [0; ArchReg::COUNT],
            last_store: FxHashMap::default(),
            window: VecDeque::with_capacity(config.rob_size + 1),
            sched_ring: Vec::with_capacity(config.sched_window + 1),
            outstanding_loads: Vec::with_capacity(config.max_outstanding_loads + 1),
            cycle: 0,
            retired: 0,
            last_retire: 0,
            critical_sync_at: CRITICAL_SYNC_INTERVAL,
            warmup_snapshot: None,
            obs: Obs::off(),
            timeq: CalendarQueue::new(),
            use_timeq,
            config,
            trace,
            rob_occ: OccupancyHist::default(),
            sched_occ: OccupancyHist::default(),
            mshr_occ: OccupancyHist::default(),
        }
    }

    /// Attaches an observability handle (see [`Core::set_obs`]).
    pub fn set_obs(&mut self, obs: Obs) {
        self.detector.set_obs(obs.clone(), self.id as u32);
        self.mem.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Core id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The trace being executed.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Retired (issued — the lite core retires at issue) µops so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// True when the whole trace has been fetched and issued.
    pub fn done(&self) -> bool {
        self.frontend.done(&self.trace) && self.fetch_buffer.is_empty()
    }

    /// Criticality detector (for inspection).
    pub fn detector(&self) -> &AnyDetector {
        &self.detector
    }

    /// Snapshot of statistics (measured since [`LiteCore::end_warmup`],
    /// or from the start).
    pub fn stats(&self) -> CoreStats {
        let raw = self.raw_stats();
        match &self.warmup_snapshot {
            Some(base) => raw.minus(base),
            None => raw,
        }
    }

    fn raw_stats(&self) -> CoreStats {
        CoreStats {
            instructions: self.retired,
            cycles: self.cycle,
            frontend: self.frontend.stats(),
            branches: self.frontend.branch_stats(),
            memory: self.mem.stats(),
            detector: self.detector.stats(),
            tact: self.mem.tact_stats(),
            rob_occ: self.rob_occ,
            sched_occ: self.sched_occ,
            mshr_occ: self.mshr_occ,
        }
    }

    /// Marks the end of warm-up (see [`Core::end_warmup`]).
    pub fn end_warmup(&mut self) {
        self.warmup_snapshot = Some(self.raw_stats());
    }

    /// One cycle, reporting whether issue or fetch made progress. The
    /// same contract as [`Core::tick_progress`]: a no-progress cycle
    /// changes nothing but the clock and the bulk-reproducible per-cycle
    /// statistics, so skipped idle spans replay exactly.
    pub fn tick_progress(&mut self, hier: &mut CacheHierarchy) -> bool {
        let cycle = self.cycle;
        if cycle.is_multiple_of(OCC_SAMPLE_PERIOD) {
            self.sample_occupancy(cycle);
        }
        let mut progress = self.issue_stage(hier, cycle);
        progress |= self.fetch_stage(hier, cycle);
        self.cycle += 1;
        if self.cycle.is_multiple_of(MAINT_PERIOD) {
            self.maintenance_at(hier, self.cycle);
        }
        if self.use_timeq {
            self.drain_wake_hints(hier);
        }
        progress
    }

    /// One scheduling quantum with stall skip-ahead (see
    /// [`Core::tick_or_skip`]).
    pub fn tick_or_skip(&mut self, hier: &mut CacheHierarchy) {
        let progress = self.tick_progress(hier);
        if !progress && self.config.skip_ahead {
            if let Some(target) = self.next_wake_cycle() {
                if target > self.cycle {
                    self.advance_to(hier, target);
                }
            }
        }
    }

    /// The skip target for the active engine: a calendar-queue peek
    /// under `timeq`, a gate scan under the tick engine.
    pub fn next_wake_cycle(&mut self) -> Option<u64> {
        if self.use_timeq {
            self.timeq.peek_next(self.cycle)
        } else {
            self.next_event_cycle()
        }
    }

    /// The earliest cycle ≥ `self.cycle` at which issue or fetch could
    /// make progress, given the tick that just ran made none. Issue can
    /// only be gated by the window (front retire pending) or the MSHR
    /// file (port budgets cannot be exhausted when nothing issued);
    /// fetch by an I-cache stall. Every candidate is a lower bound.
    fn next_event_cycle(&mut self) -> Option<u64> {
        let now = self.cycle;
        let prev = now.saturating_sub(1);
        let mut next = u64::MAX;
        if !self.fetch_buffer.is_empty() {
            if self.window.len() >= self.config.rob_size {
                if let Some(&gate) = self.window.front() {
                    next = next.min(gate.max(now));
                }
            }
            if let Some((op, _)) = self.fetch_buffer.front() {
                if op.class == OpClass::Load
                    && self.outstanding_loads.len() >= self.config.max_outstanding_loads
                {
                    match self
                        .outstanding_loads
                        .iter()
                        .filter(|&&done| done > prev)
                        .min()
                    {
                        Some(free_at) => next = next.min((*free_at).max(now)),
                        None => next = next.min(now),
                    }
                }
            }
        }
        if !self.frontend.blocked()
            && self.fetch_buffer.len() < self.config.fetch_buffer
            && !self.frontend.done(&self.trace)
        {
            next = next.min(self.frontend.stall_until().max(now));
        }
        (next != u64::MAX).then_some(next)
    }

    /// Jumps the clock to `target`, replaying the per-cycle side effects
    /// of the skipped idle span (occupancy samples, stalled fetch
    /// accounting, maintenance boundaries) exactly as the naive loop
    /// would have produced them — the same contract as
    /// [`Core::advance_to`].
    pub fn advance_to(&mut self, hier: &mut CacheHierarchy, target: u64) {
        let start = self.cycle;
        debug_assert!(target > start, "advance_to must move forward");
        if !self.frontend.blocked()
            && self.fetch_buffer.len() < self.config.fetch_buffer
            && !self.frontend.done(&self.trace)
        {
            let stalled = self
                .frontend
                .stall_until()
                .min(target)
                .saturating_sub(start);
            if stalled > 0 {
                self.frontend.add_stall_cycles(stalled);
            }
        }
        let mut x = start.next_multiple_of(OCC_SAMPLE_PERIOD);
        while x <= target {
            if x > start && x.is_multiple_of(MAINT_PERIOD) {
                self.maintenance_at(hier, x);
            }
            if x < target {
                self.sample_occupancy(x);
            }
            x += OCC_SAMPLE_PERIOD;
        }
        self.cycle = target;
    }

    fn maintenance_at(&mut self, hier: &mut CacheHierarchy, now: u64) {
        hier.maintain(now);
        // A store whose completion has passed can no longer forward;
        // its dependence edge has long been consumed by any load that
        // needed it, so the entry is dead weight.
        self.last_store.retain(|_, (_, done)| *done >= now);
    }

    fn drain_wake_hints(&mut self, hier: &mut CacheHierarchy) {
        let buf = hier.wake_hints();
        if buf.is_idle() {
            return;
        }
        let q = &mut self.timeq;
        buf.drain_into(&mut |req| {
            if let Err(bp) = q.post(req) {
                let _ = q.post(ServiceRequest::new(bp.retry_at, req.source));
            }
        });
    }

    fn post_wake(&mut self, at: u64, source: Source) {
        if let Err(bp) = self.timeq.post(ServiceRequest::new(at, source)) {
            let _ = self.timeq.post(ServiceRequest::new(bp.retry_at, source));
        }
    }

    fn sample_occupancy(&mut self, cycle: u64) {
        // Retired window entries are pruned opportunistically so the
        // sample reflects live (unretired) ops.
        while self.window.front().is_some_and(|&retire| retire < cycle) {
            self.window.pop_front();
        }
        let rob_used = self.window.len() as u64;
        let rob_cap = self.config.rob_size as u64;
        let sched_cap = self.config.sched_window as u64;
        // Ops whose operands have arrived have left the scheduler; the
        // full core reports unstarted ROB entries clamped the same way.
        self.sched_ring.retain(|&start| start > cycle);
        let sched_used = (self.sched_ring.len() as u64).min(sched_cap);
        let mshr_used = self
            .outstanding_loads
            .iter()
            .filter(|&&done| done >= cycle)
            .count() as u64;
        let mshr_cap = self.config.max_outstanding_loads as u64;
        self.rob_occ.record(rob_used, rob_cap);
        self.sched_occ.record(sched_used, sched_cap);
        self.mshr_occ.record(mshr_used, mshr_cap);
        if self.obs.wants(EventClass::OCCUPANCY) {
            let core = self.id as u32;
            for kind in [
                EventKind::RobOccupancy {
                    used: rob_used as u32,
                    cap: rob_cap as u32,
                },
                EventKind::SchedOccupancy {
                    used: sched_used as u32,
                    cap: sched_cap as u32,
                },
                EventKind::MshrOccupancy {
                    used: mshr_used as u32,
                    cap: mshr_cap as u32,
                },
            ] {
                self.obs
                    .emit(EventClass::OCCUPANCY, || Event { cycle, core, kind });
            }
        }
    }

    fn issue_stage(&mut self, hier: &mut CacheHierarchy, cycle: u64) -> bool {
        let mut int_budget = self.config.ports.int_ports;
        let mut fp_budget = self.config.ports.fp_ports;
        let mut load_budget = self.config.ports.load_ports;
        let mut store_budget = self.config.ports.store_ports;
        let mut issued = 0usize;
        while issued < self.config.alloc_width {
            // Window gate: op n waits for op n − rob_size to retire.
            if self.window.len() >= self.config.rob_size {
                let gate = *self.window.front().expect("non-empty window");
                if gate > cycle {
                    if self.use_timeq && issued == 0 {
                        self.post_wake(gate, Source::Exec);
                    }
                    break;
                }
                self.window.pop_front();
            }
            let Some(&(op, mispredicted)) = self.fetch_buffer.front() else {
                break;
            };
            // In-order issue: a class whose port budget is exhausted
            // blocks everything behind it this cycle.
            let budget = match op.class {
                OpClass::Load => &mut load_budget,
                OpClass::Store => &mut store_budget,
                OpClass::FpAdd | OpClass::FpMul => &mut fp_budget,
                _ => &mut int_budget,
            };
            if *budget == 0 {
                break;
            }
            // MSHR gate, with the same lazy pruning as the full core.
            if op.class == OpClass::Load
                && self.outstanding_loads.len() >= self.config.max_outstanding_loads
            {
                self.outstanding_loads.retain(|&done| done > cycle);
                if self.outstanding_loads.len() >= self.config.max_outstanding_loads {
                    if self.use_timeq && issued == 0 {
                        if let Some(&free_at) = self.outstanding_loads.iter().min() {
                            self.post_wake(free_at, Source::Exec);
                        }
                    }
                    break;
                }
            }
            *budget -= 1;
            self.fetch_buffer.pop_front();
            issued += 1;
            let id = self.next_id;
            self.next_id += 1;

            // Dependence timestamps and producer ids, in program order.
            let mut deps = [None; 4];
            let mut ready = cycle;
            for (slot, src) in deps.iter_mut().zip(op.sources()) {
                *slot = self.last_writer[src.index()];
                ready = ready.max(self.reg_ready[src.index()]);
            }
            // Scheduler window: the full core only selects from the
            // oldest `sched_window` ROB entries, so this op cannot
            // begin execution before op n − sched_window has retired.
            // The retire ring holds a contiguous suffix of issued ops
            // (front-pruned only), so when it is deep enough the gating
            // retire timestamp is an index away; when it is shallower,
            // that op retired in the past and the constraint is moot.
            // `exec_at` is the monotone part of the execution-start
            // estimate (retires are monotone); hierarchy accesses are
            // stamped with it so the demand stream reaches prefetchers
            // at the pace the full core would produce, instead of
            // compressed to allocation rate.
            let mut exec_at = cycle;
            if self.window.len() >= self.config.sched_window {
                let gate = self.window[self.window.len() - self.config.sched_window];
                ready = ready.max(gate);
                exec_at = exec_at.max(gate);
            }
            // The op holds a scheduler slot until its operands arrive
            // (occupancy sampling only).
            self.sched_ring.push(ready);

            let (complete, hit_level) = match op.class {
                OpClass::Load => {
                    let mem = op.mem.expect("loads reference memory");
                    let key = mem.addr.get() & !7;
                    let mut forwarded = false;
                    if let Some(&(sid, store_done)) = self.last_store.get(&key) {
                        deps[3] = Some(sid);
                        // Forward while the producing store is still in
                        // flight (mirrors "still in the window").
                        forwarded = store_done > exec_at;
                    }
                    if forwarded {
                        self.mem.note_forwarded_load();
                        (ready + 2, Some(Level::L1))
                    } else {
                        let feeder = self.mem.feeder_hint(&op);
                        self.mem.on_alloc_op(&op);
                        let (latency, level) =
                            self.mem.load(hier, &op, feeder, exec_at, &self.detector);
                        (ready + latency, Some(level))
                    }
                }
                OpClass::Store => {
                    self.mem.on_alloc_op(&op);
                    self.mem.store(hier, &op, exec_at);
                    let complete = ready + self.config.latencies.of(OpClass::Store);
                    if let Some(mem) = op.mem {
                        self.last_store.insert(mem.addr.get() & !7, (id, complete));
                    }
                    (complete, None)
                }
                class => {
                    self.mem.on_alloc_op(&op);
                    (ready + self.config.latencies.of(class), None)
                }
            };
            if op.class == OpClass::Load {
                // Forwarded loads never took an MSHR; L1 hits release
                // theirs immediately — same occupancy rule as the full
                // core.
                if hit_level.is_some_and(|l| l != Level::L1) {
                    self.outstanding_loads.push(complete);
                }
            }
            if let Some(dst) = op.dst {
                self.last_writer[dst.index()] = Some(id);
                self.reg_ready[dst.index()] = complete;
            }

            // In-order retirement: monotone, at most retire_width per
            // cycle (op n retires no earlier than one cycle after op
            // n − retire_width).
            let mut retire = complete.max(self.last_retire);
            if self.window.len() >= self.config.retire_width {
                let pace = self.window[self.window.len() - self.config.retire_width];
                retire = retire.max(pace + 1);
            }
            self.last_retire = retire;
            self.window.push_back(retire);
            self.retired += 1;

            self.obs.emit(EventClass::CORE, || Event {
                cycle,
                core: self.id as u32,
                kind: EventKind::Exec {
                    pc: op.pc.get(),
                    latency: complete.saturating_sub(ready).max(1),
                },
            });
            self.obs.emit(EventClass::CORE, || Event {
                cycle,
                core: self.id as u32,
                kind: EventKind::Retire { pc: op.pc.get() },
            });

            // Criticality feed, program order, computed latencies.
            let mut inst = RetiredInst {
                pc: op.pc,
                is_load: op.class == OpClass::Load,
                hit_level,
                exec_latency: complete.saturating_sub(ready),
                src_producers: [deps[0], deps[1], deps[2]],
                mem_producer: deps[3],
                mispredicted_branch: mispredicted,
            };
            if !inst.is_load {
                inst.hit_level = None;
            }
            self.detector.on_retire_at(inst, cycle);
            if self.retired >= self.critical_sync_at {
                self.critical_sync_at = self.retired + CRITICAL_SYNC_INTERVAL;
                if self.config.tact.data {
                    let pcs = self.detector.critical_pcs();
                    self.mem.note_critical_pcs(&pcs);
                }
            }

            if mispredicted {
                let resume = complete + self.config.mispredict_penalty;
                self.frontend.resume_after_redirect(resume);
                if self.use_timeq {
                    self.post_wake(resume, Source::Frontend);
                }
            }
        }
        issued > 0
    }

    fn fetch_stage(&mut self, hier: &mut CacheHierarchy, cycle: u64) -> bool {
        let space = self
            .config
            .fetch_buffer
            .saturating_sub(self.fetch_buffer.len());
        if space == 0 {
            return false;
        }
        let misses_before = self.frontend.stats().icache_misses;
        let pushed = self
            .frontend
            .fetch(&self.trace, cycle, hier, space, &mut self.fetch_buffer);
        let missed = self.frontend.stats().icache_misses != misses_before;
        if missed && self.use_timeq {
            self.post_wake(self.frontend.stall_until(), Source::Frontend);
        }
        pushed > 0 || missed
    }

    /// Functionally fast-forwards to trace position `until_op`, exactly
    /// like [`Core::fast_forward`]: warm hierarchy accesses and branch
    /// training at one op per cycle, no detailed timing. The lite rung
    /// uses this for its warm-up phase.
    pub fn fast_forward(&mut self, hier: &mut CacheHierarchy, until_op: usize) {
        debug_assert!(
            self.fetch_buffer.is_empty(),
            "fast_forward requires an empty fetch buffer"
        );
        let until = until_op.min(self.trace.len());
        while self.frontend.cursor() < until {
            let op = self.trace.ops()[self.frontend.cursor()];
            if let Some(code_line) = self.frontend.functional_step(&op) {
                hier.warm_access(
                    self.id,
                    catch_cache::AccessKind::Code,
                    code_line,
                    self.cycle,
                );
            }
            if let Some(mem) = op.mem {
                let kind = if op.class == OpClass::Store {
                    catch_cache::AccessKind::Store
                } else {
                    catch_cache::AccessKind::Load
                };
                hier.warm_access(self.id, kind, mem.addr.line(), self.cycle);
            }
            self.retired += 1;
            self.cycle += 1;
            if self.cycle.is_multiple_of(MAINT_PERIOD) {
                self.maintenance_at(hier, self.cycle);
            }
        }
        self.frontend.end_fast_forward();
        self.last_writer = [None; ArchReg::COUNT];
        self.reg_ready = [0; ArchReg::COUNT];
        self.last_store.clear();
        self.window.clear();
        self.sched_ring.clear();
        self.outstanding_loads.clear();
        self.last_retire = self.cycle;
        self.timeq.clear();
    }

    /// Runs to completion, then advances the clock to the last computed
    /// retire timestamp so `cycles` covers the full critical path (the
    /// full core ticks through its ROB drain; the lite core jumps).
    ///
    /// # Panics
    ///
    /// Panics if the cycle budget (`1000 × ops + 10_000_000`) is
    /// exceeded — a simulator bug.
    pub fn run_to_completion(&mut self, hier: &mut CacheHierarchy) -> CoreStats {
        let budget = 1000 * self.trace.len() as u64 + 10_000_000;
        while !self.done() {
            self.tick_or_skip(hier);
            assert!(
                self.cycle < budget,
                "lite core {} exceeded cycle budget: likely deadlock at cycle {}",
                self.id,
                self.cycle
            );
        }
        if self.last_retire > self.cycle {
            // Only maintenance boundaries are replayed in the tail: the
            // machine is architecturally empty, and the full core's
            // drain ticks take no occupancy samples either.
            let target = self.last_retire;
            let mut x = (self.cycle + 1).next_multiple_of(MAINT_PERIOD);
            while x <= target {
                self.maintenance_at(hier, x);
                x += MAINT_PERIOD;
            }
            self.cycle = target;
        }
        self.stats()
    }
}

/// A convenience used by the ladder's fast rung: run [`Core`]'s
/// functional fast-forward over the whole trace (the existing
/// `fast_forward` path, bit-for-bit), returning its stats. Lives here so
/// the fidelity dispatch in `catch-core` reads as three rungs of one
/// ladder.
pub fn run_fast_functional(
    id: usize,
    trace: Trace,
    config: CoreConfig,
    hier: &mut CacheHierarchy,
    warmup_ops: usize,
) -> CoreStats {
    let mut core = Core::new(id, trace, config);
    let len = core.trace().len();
    if warmup_ops > 0 {
        core.fast_forward(hier, warmup_ops.min(len));
        core.end_warmup();
        hier.reset_stats();
    }
    core.fast_forward(hier, len);
    core.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_cache::{FixedLatencyBackend, HierarchyConfig};
    use catch_trace::{Addr, TraceBuilder};

    fn hier() -> CacheHierarchy {
        CacheHierarchy::new(
            &HierarchyConfig::skylake_server(1),
            Box::new(FixedLatencyBackend::new(200)),
        )
    }

    fn r(i: u8) -> ArchReg {
        ArchReg::new(i)
    }

    #[test]
    fn independent_alus_reach_high_ipc() {
        let mut b = TraceBuilder::new("ilp");
        let top = b.label();
        for rep in 0..500 {
            b.jump_to(top);
            for i in 0..8 {
                b.alu(r(i), &[]);
            }
            b.backedge(top, rep != 499);
        }
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let mut core = LiteCore::new(0, b.build(), config);
        let stats = core.run_to_completion(&mut hier());
        assert!(
            stats.ipc() > 2.5,
            "independent ALU stream should issue near width: IPC {}",
            stats.ipc()
        );
    }

    #[test]
    fn dependent_chain_is_serialised() {
        let mut b = TraceBuilder::new("chain");
        b.alu(r(1), &[]);
        for _ in 0..2000 {
            b.alu(r(1), &[r(1)]);
        }
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let mut core = LiteCore::new(0, b.build(), config);
        let stats = core.run_to_completion(&mut hier());
        assert!(
            stats.ipc() < 1.2,
            "dependent ALU chain is ~1 IPC: {}",
            stats.ipc()
        );
    }

    #[test]
    fn load_latency_gates_dependent_chain() {
        let chain = |lines: u64| {
            let mut b = TraceBuilder::new("ptr");
            let top = b.label();
            for i in 0..1500u64 {
                b.jump_to(top);
                let addr = Addr::new((i % lines) * 64);
                b.load_dep(r(1), addr, 0, &[r(1)]);
                b.backedge(top, i != 1499);
            }
            b.build()
        };
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        config.baseline_prefetchers = false;
        let small = LiteCore::new(0, chain(4), config.clone())
            .run_to_completion(&mut hier())
            .ipc();
        let large = LiteCore::new(0, chain(200_000), config)
            .run_to_completion(&mut hier())
            .ipc();
        assert!(
            small > 3.0 * large,
            "L1-resident chase {small} must beat DRAM chase {large}"
        );
    }

    #[test]
    fn store_to_load_forwarding_is_fast() {
        let mut b = TraceBuilder::new("fwd");
        b.alu(r(1), &[]);
        for i in 0..500u64 {
            b.store(Addr::new(0x5000 + i * 8), &[r(1)]);
            b.load_dep(r(2), Addr::new(0x5000 + i * 8), 0, &[]);
        }
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let mut core = LiteCore::new(0, b.build(), config);
        let stats = core.run_to_completion(&mut hier());
        assert!(stats.memory.forwarded > 400, "{}", stats.memory.forwarded);
    }

    #[test]
    fn detector_sees_all_retired_instructions() {
        let mut b = TraceBuilder::new("t");
        for i in 0..1000u64 {
            b.load(r(1), Addr::new((i % 64) * 64), 0);
            b.alu(r(2), &[r(1)]);
        }
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let mut core = LiteCore::new(0, b.build(), config);
        let stats = core.run_to_completion(&mut hier());
        assert_eq!(stats.detector.retired, 2000);
        assert_eq!(stats.instructions, 2000);
    }

    #[test]
    fn mshr_cap_limits_memory_parallelism() {
        let build = || {
            let mut b = TraceBuilder::new("mlp");
            for i in 0..64u64 {
                b.load(r(1), Addr::new(i * 4096), 0);
            }
            b.build()
        };
        let mut wide = CoreConfig::baseline();
        wide.perfect_l1i = true;
        wide.baseline_prefetchers = false;
        wide.max_outstanding_loads = 16;
        let mut narrow = wide.clone();
        narrow.max_outstanding_loads = 1;
        let run = |cfg: CoreConfig| {
            LiteCore::new(0, build(), cfg)
                .run_to_completion(&mut hier())
                .cycles
        };
        let fast = run(wide);
        let slow = run(narrow);
        assert!(
            slow > 3 * fast,
            "one MSHR must serialise misses: {slow} vs {fast}"
        );
    }

    #[test]
    fn engines_agree_bit_exactly() {
        // The tick loop and the calendar queue must produce identical
        // stats, like the full core's engine-parity guarantee.
        let build = || {
            let mut b = TraceBuilder::new("par");
            for i in 0..3000u64 {
                b.load(r(1), Addr::new((i % 700) * 64), 0);
                b.alu(r(2), &[r(1)]);
                let tgt = b.cursor().advance(8);
                b.cond_branch(i % 3 == 0, tgt, &[r(2)]);
            }
            b.build()
        };
        let mut tick = CoreConfig::baseline();
        tick.engine = Engine::Tick;
        let mut timeq = tick.clone();
        timeq.engine = Engine::TimeQ;
        let a = LiteCore::new(0, build(), tick).run_to_completion(&mut hier());
        let b = LiteCore::new(0, build(), timeq).run_to_completion(&mut hier());
        assert_eq!(a, b, "lite engines must agree bit-exactly");
    }

    #[test]
    fn fast_forward_warms_and_detailed_region_hits() {
        let mut b = TraceBuilder::new("ff");
        for i in 0..2000u64 {
            b.load(r(1), Addr::new((i % 128) * 64), 0);
        }
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        config.baseline_prefetchers = false;
        let mut h = hier();
        let mut core = LiteCore::new(0, b.build(), config);
        core.fast_forward(&mut h, 1000);
        assert_eq!(core.retired(), 1000);
        let stats = core.run_to_completion(&mut h);
        assert_eq!(stats.instructions, 2000);
        assert_eq!(stats.memory.loads, 1000);
        assert!(
            stats.memory.loads_by_level[0] > 950,
            "warmed set must hit in L1: {:?}",
            stats.memory.loads_by_level
        );
    }

    #[test]
    fn lite_tracks_the_full_core_within_tolerance() {
        // A mixed kernel: the lite IPC should be in the same regime as
        // the full core's (the golden-workload bound lives in the
        // catch-core ladder experiment; this is the unit-level sanity
        // version).
        let build = || {
            let mut b = TraceBuilder::new("mix");
            for i in 0..6000u64 {
                b.load(r(1), Addr::new((i % 4096) * 64), 0);
                b.alu(r(2), &[r(1)]);
                b.alu(r(3), &[]);
                let tgt = b.cursor().advance(8);
                b.cond_branch(i % 7 == 0, tgt, &[r(3)]);
            }
            b.build()
        };
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let full = Core::new(0, build(), config.clone())
            .run_to_completion(&mut hier())
            .ipc();
        let lite = LiteCore::new(0, build(), config)
            .run_to_completion(&mut hier())
            .ipc();
        let err = (lite - full).abs() / full * 100.0;
        assert!(
            err < 35.0,
            "lite IPC {lite:.3} strays too far from full {full:.3} ({err:.1}%)"
        );
    }

    #[test]
    fn fast_functional_matches_core_fast_forward_bitwise() {
        let build = || {
            let mut b = TraceBuilder::new("fastrung");
            for i in 0..1500u64 {
                b.load(r(1), Addr::new((i % 512) * 64), 0);
                b.alu(r(2), &[r(1)]);
            }
            b.build()
        };
        let config = CoreConfig::baseline();
        let via_helper = run_fast_functional(0, build(), config.clone(), &mut hier(), 500);
        let manual = {
            let mut h = hier();
            let mut core = Core::new(0, build(), config);
            core.fast_forward(&mut h, 500);
            core.end_warmup();
            h.reset_stats();
            core.fast_forward(&mut h, 3000);
            core.stats()
        };
        assert_eq!(via_helper, manual, "fast rung is the existing fast-forward");
    }
}
