//! The reorder buffer and dependence-readiness tracking.

use catch_cache::Level;
use catch_trace::hash::FxHashMap;
use catch_trace::MicroOp;
use std::collections::VecDeque;

/// One in-flight micro-op.
#[derive(Clone, Debug)]
pub struct RobEntry {
    /// Global (fetch-order == retire-order) id; doubles as the criticality
    /// sequence number.
    pub id: u64,
    /// The micro-op.
    pub op: MicroOp,
    /// Producer ids: up to three register producers plus a forwarding
    /// store.
    pub deps: [Option<u64>; 4],
    /// True once issued to execution.
    pub started: bool,
    /// Cycle execution began (valid when `started`).
    pub dispatch: u64,
    /// Completion cycle (valid when `started`).
    pub complete: u64,
    /// Allocation cycle.
    pub alloc: u64,
    /// Hit level for loads.
    pub hit_level: Option<Level>,
    /// Mispredicted branch.
    pub mispredicted: bool,
    /// Memoised readiness cycle, once all producers have started.
    pub ready_at: Option<u64>,
    /// Allocation-time feeder hint for loads: the youngest producing load
    /// (PC, value) in program order, used by TACT-Feeder training.
    pub feeder: Option<(catch_trace::Pc, u64)>,
}

impl RobEntry {
    /// Creates an entry for `op` with the given id and producer set.
    pub fn new(id: u64, op: MicroOp, deps: [Option<u64>; 4], mispredicted: bool) -> Self {
        RobEntry {
            id,
            op,
            deps,
            started: false,
            dispatch: 0,
            complete: 0,
            alloc: 0,
            hit_level: None,
            mispredicted,
            ready_at: None,
            feeder: None,
        }
    }
}

/// Reorder buffer: in-order allocate/retire, out-of-order issue, with a
/// completion map for dependence resolution.
#[derive(Debug)]
pub struct Rob {
    entries: VecDeque<RobEntry>,
    capacity: usize,
    /// Completion cycles of *started* in-flight ops, by id.
    completion: FxHashMap<u64, u64>,
    /// Ids below this have retired (always ready).
    retired_below: u64,
    /// Entries allocated but not yet issued (scheduler pressure).
    unstarted: usize,
}

impl Rob {
    /// Creates a ROB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB needs capacity");
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            completion: FxHashMap::default(),
            retired_below: 0,
            unstarted: 0,
        }
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries allocated but not yet issued to execution.
    pub fn unstarted(&self) -> usize {
        self.unstarted
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when allocation is possible.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Allocates an entry at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full.
    pub fn allocate(&mut self, mut entry: RobEntry, cycle: u64) {
        assert!(self.has_space(), "allocate on full ROB");
        entry.alloc = cycle;
        debug_assert!(!entry.started, "allocating a started entry");
        self.unstarted += 1;
        self.entries.push_back(entry);
    }

    /// The cycle at which `id`'s result is available: `Some(0)` if already
    /// retired, the completion cycle if started, `None` if unknown (not
    /// yet issued).
    pub fn producer_ready_at(&self, id: u64) -> Option<u64> {
        if id < self.retired_below {
            return Some(0);
        }
        self.completion.get(&id).copied()
    }

    /// Computes (and memoises) the readiness cycle of the entry at
    /// `index`: the max completion cycle over its producers. `None` while
    /// any producer is unissued.
    pub fn readiness(&mut self, index: usize) -> Option<u64> {
        let entry = &self.entries[index];
        if let Some(r) = entry.ready_at {
            return Some(r);
        }
        let mut ready = 0u64;
        for dep in entry.deps.iter().flatten() {
            match self.producer_ready_at(*dep) {
                Some(c) => ready = ready.max(c),
                None => return None,
            }
        }
        self.entries[index].ready_at = Some(ready);
        Some(ready)
    }

    /// Marks entry `index` as issued at `dispatch` completing at
    /// `complete`.
    pub fn start(&mut self, index: usize, dispatch: u64, complete: u64) {
        let entry = &mut self.entries[index];
        debug_assert!(!entry.started, "double issue");
        entry.started = true;
        entry.dispatch = dispatch;
        entry.complete = complete;
        self.unstarted -= 1;
        self.completion.insert(entry.id, complete);
    }

    /// Pops the head if it has completed by `cycle`.
    pub fn try_retire(&mut self, cycle: u64) -> Option<RobEntry> {
        let head = self.entries.front()?;
        if head.started && head.complete <= cycle {
            let entry = self.entries.pop_front().expect("checked front");
            self.completion.remove(&entry.id);
            self.retired_below = entry.id + 1;
            Some(entry)
        } else {
            None
        }
    }

    /// Immutable view of the entries (head = oldest).
    pub fn entries(&self) -> &VecDeque<RobEntry> {
        &self.entries
    }

    /// Mutable entry access.
    pub fn entry_mut(&mut self, index: usize) -> &mut RobEntry {
        &mut self.entries[index]
    }

    /// Earliest cycle at which the head could retire, if known (for cycle
    /// skipping).
    pub fn head_completion(&self) -> Option<u64> {
        self.entries
            .front()
            .filter(|e| e.started)
            .map(|e| e.complete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_trace::{OpClass, Pc};

    fn op() -> MicroOp {
        MicroOp::compute(Pc::new(0), OpClass::Alu, None, &[])
    }

    #[test]
    fn allocate_and_retire_in_order() {
        let mut rob = Rob::new(4);
        rob.allocate(RobEntry::new(0, op(), [None; 4], false), 0);
        rob.allocate(RobEntry::new(1, op(), [None; 4], false), 0);
        assert_eq!(rob.len(), 2);
        // Head not started: cannot retire.
        assert!(rob.try_retire(10).is_none());
        rob.start(0, 1, 3);
        rob.start(1, 1, 2);
        // Entry 1 finished first but head retires first.
        assert!(rob.try_retire(2).is_none());
        let head = rob.try_retire(3).unwrap();
        assert_eq!(head.id, 0);
        let next = rob.try_retire(3).unwrap();
        assert_eq!(next.id, 1);
        assert!(rob.is_empty());
    }

    #[test]
    fn readiness_tracks_producers() {
        let mut rob = Rob::new(4);
        rob.allocate(RobEntry::new(0, op(), [None; 4], false), 0);
        rob.allocate(
            RobEntry::new(1, op(), [Some(0), None, None, None], false),
            0,
        );
        // Producer unissued: unknown readiness.
        assert_eq!(rob.readiness(1), None);
        rob.start(0, 0, 7);
        assert_eq!(rob.readiness(1), Some(7));
        // Memoised.
        assert_eq!(rob.entries()[1].ready_at, Some(7));
    }

    #[test]
    fn retired_producers_are_ready() {
        let mut rob = Rob::new(4);
        rob.allocate(RobEntry::new(0, op(), [None; 4], false), 0);
        rob.start(0, 0, 1);
        rob.try_retire(1).unwrap();
        rob.allocate(
            RobEntry::new(1, op(), [Some(0), None, None, None], false),
            2,
        );
        assert_eq!(rob.readiness(0), Some(0));
    }

    #[test]
    fn capacity_enforced() {
        let mut rob = Rob::new(1);
        rob.allocate(RobEntry::new(0, op(), [None; 4], false), 0);
        assert!(!rob.has_space());
    }

    #[test]
    #[should_panic(expected = "full ROB")]
    fn allocate_on_full_panics() {
        let mut rob = Rob::new(1);
        rob.allocate(RobEntry::new(0, op(), [None; 4], false), 0);
        rob.allocate(RobEntry::new(1, op(), [None; 4], false), 0);
    }

    #[test]
    fn head_completion_for_cycle_skipping() {
        let mut rob = Rob::new(2);
        rob.allocate(RobEntry::new(0, op(), [None; 4], false), 0);
        assert_eq!(rob.head_completion(), None);
        rob.start(0, 0, 42);
        assert_eq!(rob.head_completion(), Some(42));
    }
}
