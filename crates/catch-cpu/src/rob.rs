//! The reorder buffer and dependence-readiness tracking.

use catch_cache::Level;
use catch_timeq::HiBitSet;
use catch_trace::MicroOp;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One in-flight micro-op.
#[derive(Clone, Debug)]
pub struct RobEntry {
    /// Global (fetch-order == retire-order) id; doubles as the criticality
    /// sequence number.
    pub id: u64,
    /// The micro-op.
    pub op: MicroOp,
    /// Producer ids: up to three register producers plus a forwarding
    /// store.
    pub deps: [Option<u64>; 4],
    /// True once issued to execution.
    pub started: bool,
    /// Cycle execution began (valid when `started`).
    pub dispatch: u64,
    /// Completion cycle (valid when `started`).
    pub complete: u64,
    /// Allocation cycle.
    pub alloc: u64,
    /// Hit level for loads.
    pub hit_level: Option<Level>,
    /// Mispredicted branch.
    pub mispredicted: bool,
    /// Readiness cycle (max producer completion), filled in the moment
    /// the last producer starts — see [`Rob::start`]'s waiter walk.
    pub ready_at: Option<u64>,
    /// Allocation-time feeder hint for loads: the youngest producing load
    /// (PC, value) in program order, used by TACT-Feeder training.
    pub feeder: Option<(catch_trace::Pc, u64)>,
    /// Intrusive waiter links: when this entry waits on the producer in
    /// `deps[k]`, `next_waiter[k]` chains to the next waiter on that
    /// same producer, packed as `id << 2 | slot` ([`NO_WAITER`] ends
    /// the chain) to keep the entry small — it is memcpy'd on retire.
    next_waiter: [u64; 4],
    /// Head of the list of dependents registered on this entry (same
    /// packing).
    waiter_head: u64,
}

/// Chain terminator for the packed intrusive waiter links.
const NO_WAITER: u64 = u64::MAX;

impl RobEntry {
    /// Creates an entry for `op` with the given id and producer set.
    pub fn new(id: u64, op: MicroOp, deps: [Option<u64>; 4], mispredicted: bool) -> Self {
        RobEntry {
            id,
            op,
            deps,
            started: false,
            dispatch: 0,
            complete: 0,
            alloc: 0,
            hit_level: None,
            mispredicted,
            ready_at: None,
            feeder: None,
            next_waiter: [NO_WAITER; 4],
            waiter_head: NO_WAITER,
        }
    }
}

/// Reorder buffer: in-order allocate/retire, out-of-order issue, with
/// event-driven scheduler wakeup instead of per-cycle readiness polls.
///
/// * Entry ids are consecutive (one per allocation, retired from the
///   front), so a producer id maps straight to its deque index — no
///   completion map, one bounds check per dependence lookup.
/// * Each entry waiting on unissued producers sits on their intrusive
///   waiter lists; when a producer starts, [`Rob::start`] walks its
///   list, and each dependent whose last producer just started gets its
///   readiness computed once and is pushed into the wake heap at its
///   effective-ready cycle `max(readiness, alloc + 1)`.
/// * [`Rob::promote_ready`] drains the heap up to the current cycle
///   into `issuable_mask`, and the scheduler scans only that mask —
///   O(issuable) per cycle rather than O(window).
///
/// The wake cycle is the max over *all* producer completions, while the
/// old lazy poll counted producers already retired as ready-at-0; the
/// difference is confined to components at or below the scan cycle, so
/// which entries are issuable at any executed tick — and therefore
/// every counter — is unchanged (asserted by the parity suites).
#[derive(Debug)]
pub struct Rob {
    entries: VecDeque<RobEntry>,
    capacity: usize,
    /// Entries allocated but not yet issued (scheduler pressure).
    unstarted: usize,
    /// Unstarted entries ordered by effective-ready cycle: `(eff, id)`
    /// min-heap, pushed exactly once per entry when its readiness
    /// becomes known.
    wake_heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// Hierarchical bitmask over entry positions: bit `i` set iff
    /// `entries[i]` is unstarted and its effective-ready cycle has been
    /// reached. Kept aligned with the deque (shifted down on head pops)
    /// so scheduler scans touch only issue candidates.
    issuable_mask: HiBitSet,
}

impl Rob {
    /// Creates a ROB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB needs capacity");
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            unstarted: 0,
            wake_heap: BinaryHeap::with_capacity(capacity),
            issuable_mask: HiBitSet::new(capacity),
        }
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries allocated but not yet issued to execution.
    pub fn unstarted(&self) -> usize {
        self.unstarted
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when allocation is possible.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Allocates an entry at `cycle`, resolving its producers: if all
    /// have started (or retired) the entry goes straight into the wake
    /// heap at its effective-ready cycle; otherwise it registers on
    /// each unissued producer's waiter list and wakes when the last of
    /// them starts.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full.
    pub fn allocate(&mut self, mut entry: RobEntry, cycle: u64) {
        assert!(self.has_space(), "allocate on full ROB");
        entry.alloc = cycle;
        debug_assert!(!entry.started, "allocating a started entry");
        self.unstarted += 1;
        let id = entry.id;
        let index = self.entries.len();
        self.entries.push_back(entry);
        let front = self.entries.front().expect("just pushed").id;
        let mut ready = 0u64;
        let mut pending = false;
        for k in 0..4 {
            let Some(d) = self.entries[index].deps[k] else {
                continue;
            };
            match self.producer_ready_at(d) {
                Some(c) => ready = ready.max(c),
                None => {
                    // Producer in flight and unissued: wait on it. A
                    // duplicate producer registers once per slot; the
                    // `ready_at` guard in the waiter walk dedups wakes.
                    pending = true;
                    let pidx = (d - front) as usize;
                    let prev_head =
                        std::mem::replace(&mut self.entries[pidx].waiter_head, id << 2 | k as u64);
                    self.entries[index].next_waiter[k] = prev_head;
                }
            }
        }
        if !pending {
            let e = &mut self.entries[index];
            e.ready_at = Some(ready);
            let eff = ready.max(e.alloc + 1);
            if eff <= cycle + 1 {
                // Issuable at the very next tick, which always runs
                // (this allocation was progress, so no skip precedes
                // it): promote directly and skip the heap round-trip.
                self.issuable_mask.set(index);
            } else {
                self.wake_heap.push(Reverse((eff, id)));
            }
        }
    }

    /// The cycle at which `id`'s result is available: `Some(0)` if already
    /// retired, the completion cycle if started, `None` if unknown (not
    /// yet issued). Ids are consecutive, so an in-flight producer is at
    /// deque position `id - front.id` — one bounds check, no hashing.
    pub fn producer_ready_at(&self, id: u64) -> Option<u64> {
        let front = match self.entries.front() {
            Some(e) => e.id,
            // Empty ROB: every referenced producer has retired.
            None => return Some(0),
        };
        if id < front {
            return Some(0);
        }
        let entry = &self.entries[(id - front) as usize];
        debug_assert_eq!(entry.id, id, "ROB ids must be consecutive");
        entry.started.then_some(entry.complete)
    }

    /// The readiness cycle of the entry at `index`: the max completion
    /// cycle over its producers. `None` while any producer is unissued.
    /// Pure — the stored `ready_at` is written only by the eager wake
    /// path, so a side-band query here can never leave an entry marked
    /// ready without a wake-heap reservation.
    pub fn readiness(&self, index: usize) -> Option<u64> {
        let entry = &self.entries[index];
        if let Some(r) = entry.ready_at {
            return Some(r);
        }
        let mut ready = 0u64;
        for dep in entry.deps.iter().flatten() {
            match self.producer_ready_at(*dep) {
                Some(c) => ready = ready.max(c),
                None => return None,
            }
        }
        Some(ready)
    }

    /// Marks entry `index` as issued at `dispatch` completing at
    /// `complete`, then walks its waiter list: every dependent whose
    /// last producer this was gets its readiness computed once and a
    /// wake-heap reservation at its effective-ready cycle.
    pub fn start(&mut self, index: usize, dispatch: u64, complete: u64) {
        let entry = &mut self.entries[index];
        debug_assert!(!entry.started, "double issue");
        entry.started = true;
        entry.dispatch = dispatch;
        entry.complete = complete;
        self.unstarted -= 1;
        self.issuable_mask.clear(index);
        let front = self.entries.front().expect("entry exists").id;
        let mut cursor = std::mem::replace(&mut self.entries[index].waiter_head, NO_WAITER);
        while cursor != NO_WAITER {
            let (wid, slot) = (cursor >> 2, (cursor & 3) as usize);
            let widx = (wid - front) as usize;
            cursor = std::mem::replace(&mut self.entries[widx].next_waiter[slot], NO_WAITER);
            if self.entries[widx].ready_at.is_some() {
                // A duplicate producer slot already woke this entry.
                continue;
            }
            let deps = self.entries[widx].deps;
            let mut ready = 0u64;
            let mut pending = false;
            for dep in deps.iter().flatten() {
                match self.producer_ready_at(*dep) {
                    Some(c) => ready = ready.max(c),
                    None => {
                        // Still waiting on another producer's list.
                        pending = true;
                        break;
                    }
                }
            }
            if pending {
                continue;
            }
            let e = &mut self.entries[widx];
            e.ready_at = Some(ready);
            let eff = ready.max(e.alloc + 1);
            // Always via the heap: a direct mask set here would be
            // visible to the issue scan still walking this cycle, one
            // cycle before `eff` (which is at least `dispatch + 1`).
            self.wake_heap.push(Reverse((eff, wid)));
        }
    }

    /// Pops the head if it has completed by `cycle`.
    pub fn try_retire(&mut self, cycle: u64) -> Option<RobEntry> {
        let head = self.entries.front()?;
        if head.started && head.complete <= cycle {
            let entry = self.entries.pop_front().expect("checked front");
            // The head had issued, so bit 0 is clear and the shift
            // realigns the mask with the popped deque.
            self.issuable_mask.shift_down_one();
            Some(entry)
        } else {
            None
        }
    }

    /// Immutable view of the entries (head = oldest).
    pub fn entries(&self) -> &VecDeque<RobEntry> {
        &self.entries
    }

    /// Mutable entry access.
    pub fn entry_mut(&mut self, index: usize) -> &mut RobEntry {
        &mut self.entries[index]
    }

    /// Drains the wake heap up to `cycle`: every reservation whose
    /// effective-ready cycle has arrived sets its entry's bit in the
    /// issuable mask (positions resolved against the current head, so
    /// retirements between reservation and promotion are free).
    pub fn promote_ready(&mut self, cycle: u64) {
        let Some(front) = self.entries.front().map(|e| e.id) else {
            debug_assert!(self.wake_heap.is_empty(), "wakes outlive their entries");
            return;
        };
        while let Some(&Reverse((eff, id))) = self.wake_heap.peek() {
            if eff > cycle {
                break;
            }
            self.wake_heap.pop();
            debug_assert!(id >= front, "woken entry already retired");
            let idx = (id - front) as usize;
            // An entry issued out of band (tests drive `start`
            // directly) leaves its reservation behind; drop it.
            if !self.entries[idx].started {
                self.issuable_mask.set(idx);
            }
        }
    }

    /// Position of the first issuable (promoted, unissued) entry at or
    /// after `from` — the scheduler scan, O(issuable) per cycle via the
    /// hierarchical mask rather than O(window).
    pub fn next_issuable_at_or_after(&self, from: usize) -> Option<usize> {
        self.issuable_mask.next_set_at_or_after(from)
    }

    /// True when some promoted entry sits inside the scheduler window.
    /// After a no-progress tick this pins the entry as an MSHR-blocked
    /// load: port budgets cannot be exhausted when nothing issued.
    pub fn has_issuable_below(&self, window: usize) -> bool {
        self.issuable_mask
            .next_set_at_or_after(0)
            .is_some_and(|i| i < window)
    }

    /// Earliest effective-ready cycle still parked in the wake heap, if
    /// any — a lower bound on the next cycle an unpromoted entry can
    /// issue, used as a skip-ahead candidate.
    pub fn next_wake_eff(&self) -> Option<u64> {
        self.wake_heap.peek().map(|&Reverse((eff, _))| eff)
    }

    /// Earliest cycle at which the head could retire, if known (for cycle
    /// skipping).
    pub fn head_completion(&self) -> Option<u64> {
        self.entries
            .front()
            .filter(|e| e.started)
            .map(|e| e.complete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_trace::{OpClass, Pc};

    fn op() -> MicroOp {
        MicroOp::compute(Pc::new(0), OpClass::Alu, None, &[])
    }

    #[test]
    fn allocate_and_retire_in_order() {
        let mut rob = Rob::new(4);
        rob.allocate(RobEntry::new(0, op(), [None; 4], false), 0);
        rob.allocate(RobEntry::new(1, op(), [None; 4], false), 0);
        assert_eq!(rob.len(), 2);
        // Head not started: cannot retire.
        assert!(rob.try_retire(10).is_none());
        rob.start(0, 1, 3);
        rob.start(1, 1, 2);
        // Entry 1 finished first but head retires first.
        assert!(rob.try_retire(2).is_none());
        let head = rob.try_retire(3).unwrap();
        assert_eq!(head.id, 0);
        let next = rob.try_retire(3).unwrap();
        assert_eq!(next.id, 1);
        assert!(rob.is_empty());
    }

    #[test]
    fn readiness_tracks_producers() {
        let mut rob = Rob::new(4);
        rob.allocate(RobEntry::new(0, op(), [None; 4], false), 0);
        rob.allocate(
            RobEntry::new(1, op(), [Some(0), None, None, None], false),
            0,
        );
        // Producer unissued: unknown readiness.
        assert_eq!(rob.readiness(1), None);
        rob.start(0, 0, 7);
        assert_eq!(rob.readiness(1), Some(7));
        // The waiter walk filled the eager readiness and reserved a wake.
        assert_eq!(rob.entries()[1].ready_at, Some(7));
        rob.promote_ready(6);
        assert_eq!(rob.next_issuable_at_or_after(0), None, "not ready yet");
        rob.promote_ready(7);
        assert_eq!(rob.next_issuable_at_or_after(0), Some(1));
    }

    #[test]
    fn retired_producers_are_ready() {
        let mut rob = Rob::new(4);
        rob.allocate(RobEntry::new(0, op(), [None; 4], false), 0);
        rob.start(0, 0, 1);
        rob.try_retire(1).unwrap();
        rob.allocate(
            RobEntry::new(1, op(), [Some(0), None, None, None], false),
            2,
        );
        assert_eq!(rob.readiness(0), Some(0));
    }

    #[test]
    fn capacity_enforced() {
        let mut rob = Rob::new(1);
        rob.allocate(RobEntry::new(0, op(), [None; 4], false), 0);
        assert!(!rob.has_space());
    }

    #[test]
    #[should_panic(expected = "full ROB")]
    fn allocate_on_full_panics() {
        let mut rob = Rob::new(1);
        rob.allocate(RobEntry::new(0, op(), [None; 4], false), 0);
        rob.allocate(RobEntry::new(1, op(), [None; 4], false), 0);
    }

    #[test]
    fn head_completion_for_cycle_skipping() {
        let mut rob = Rob::new(2);
        rob.allocate(RobEntry::new(0, op(), [None; 4], false), 0);
        assert_eq!(rob.head_completion(), None);
        rob.start(0, 0, 42);
        assert_eq!(rob.head_completion(), Some(42));
    }
}
