//! The assembled out-of-order core.

use crate::config::CoreConfig;
use crate::frontend::Frontend;
use crate::memory::MemoryInterface;
use crate::rob::{Rob, RobEntry};
use crate::stats::CoreStats;
use catch_cache::{AccessKind, CacheHierarchy};
use catch_criticality::{AnyDetector, CriticalityDetector, HeuristicDetector, RetiredInst};
use catch_obs::{Event, EventClass, EventKind, Obs, OccupancyHist, OCC_SAMPLE_PERIOD};
use catch_prefetch::MemoryImage;
use catch_timeq::{CalendarQueue, Engine, ServiceRequest, Source};
use catch_trace::hash::FxHashMap;
use catch_trace::{ArchReg, MicroOp, OpClass, Trace};
use std::collections::VecDeque;

/// How often (in retired µops) newly detected critical PCs are pushed to
/// TACT.
pub(crate) const CRITICAL_SYNC_INTERVAL: u64 = 512;

/// Cadence (in cycles) of ledger/bookkeeping maintenance. A multiple of
/// [`OCC_SAMPLE_PERIOD`], which the skip-ahead bulk replay relies on.
pub(crate) const MAINT_PERIOD: u64 = 65_536;

/// One out-of-order core bound to a trace.
///
/// Call [`Core::tick`] once per cycle against the shared hierarchy (the
/// multi-core driver interleaves cores), or [`Core::run_to_completion`]
/// for a single-core run.
#[derive(Debug)]
pub struct Core {
    id: usize,
    config: CoreConfig,
    trace: Trace,
    frontend: Frontend,
    fetch_buffer: VecDeque<(MicroOp, bool)>,
    rob: Rob,
    mem: MemoryInterface,
    detector: AnyDetector,
    next_id: u64,
    last_writer: [Option<u64>; ArchReg::COUNT],
    last_store: FxHashMap<u64, u64>,
    cycle: u64,
    retired: u64,
    critical_sync_at: u64,
    /// Stats snapshot taken at the end of warm-up; `stats()` subtracts it.
    warmup_snapshot: Option<CoreStats>,
    /// Pending front-end redirect: (branch id, set when it issues).
    pending_redirect: Option<u64>,
    /// Completion cycles of loads currently outstanding to the hierarchy
    /// (bounded by `max_outstanding_loads` — the L1D MSHR file).
    outstanding_loads: Vec<u64>,
    obs: Obs,
    /// The event queue driving stall skip-ahead under
    /// [`Engine::TimeQ`]: every wake source posts a [`ServiceRequest`]
    /// at its event cycle, and the idle-skip target is an O(1) queue
    /// peek instead of a window rescan.
    timeq: CalendarQueue,
    /// Cached `engine == TimeQ && skip_ahead` (posting is pointless
    /// when idle spans are walked tick by tick).
    use_timeq: bool,
    /// ROB occupancy, sampled every [`OCC_SAMPLE_PERIOD`] cycles.
    rob_occ: OccupancyHist,
    /// Scheduler pressure (unissued ops clamped to the window), same cadence.
    sched_occ: OccupancyHist,
    /// Load-MSHR occupancy, same cadence.
    mshr_occ: OccupancyHist,
}

impl Core {
    /// Creates a core for `trace` with the given configuration.
    pub fn new(id: usize, trace: Trace, config: CoreConfig) -> Self {
        let image = MemoryImage::from_trace(&trace);
        let use_timeq = config.engine == Engine::TimeQ && config.skip_ahead;
        Core {
            id,
            frontend: Frontend::new(id, &config),
            fetch_buffer: VecDeque::with_capacity(config.fetch_buffer),
            rob: Rob::new(config.rob_size),
            mem: MemoryInterface::new(id, &config, image),
            detector: match &config.detector_kind {
                crate::config::DetectorKind::Graph => {
                    AnyDetector::Graph(CriticalityDetector::new(config.detector.clone()))
                }
                crate::config::DetectorKind::Heuristic(h) => AnyDetector::Heuristic(
                    HeuristicDetector::new(config.detector.clone(), h.clone()),
                ),
            },
            next_id: 0,
            last_writer: [None; ArchReg::COUNT],
            last_store: FxHashMap::default(),
            cycle: 0,
            retired: 0,
            critical_sync_at: CRITICAL_SYNC_INTERVAL,
            warmup_snapshot: None,
            outstanding_loads: Vec::with_capacity(config.max_outstanding_loads + 1),
            config,
            trace,
            pending_redirect: None,
            obs: Obs::off(),
            timeq: CalendarQueue::new(),
            use_timeq,
            rob_occ: OccupancyHist::default(),
            sched_occ: OccupancyHist::default(),
            mshr_occ: OccupancyHist::default(),
        }
    }

    /// Attaches an observability handle: pipeline events, occupancy
    /// samples, TACT and criticality-detector events all flow through
    /// clones of `obs`, attributed to this core. Detached by default.
    pub fn set_obs(&mut self, obs: Obs) {
        self.detector.set_obs(obs.clone(), self.id as u32);
        self.mem.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Core id (index into the hierarchy's private caches).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The trace being executed.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Retired µops so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// True when the whole trace has been fetched and drained.
    pub fn done(&self) -> bool {
        self.frontend.done(&self.trace) && self.fetch_buffer.is_empty() && self.rob.is_empty()
    }

    /// Criticality detector (for inspection).
    pub fn detector(&self) -> &AnyDetector {
        &self.detector
    }

    /// Snapshot of statistics (measured since the last
    /// [`Core::end_warmup`], or from the start).
    pub fn stats(&self) -> CoreStats {
        let raw = self.raw_stats();
        match &self.warmup_snapshot {
            Some(base) => raw.minus(base),
            None => raw,
        }
    }

    fn raw_stats(&self) -> CoreStats {
        CoreStats {
            instructions: self.retired,
            cycles: self.cycle,
            frontend: self.frontend.stats(),
            branches: self.frontend.branch_stats(),
            memory: self.mem.stats(),
            detector: self.detector.stats(),
            tact: self.mem.tact_stats(),
            rob_occ: self.rob_occ,
            sched_occ: self.sched_occ,
            mshr_occ: self.mshr_occ,
        }
    }

    /// Marks the end of warm-up: subsequent [`Core::stats`] cover only the
    /// steady-state interval. Microarchitectural state (caches, predictors,
    /// learned tables) is untouched.
    pub fn end_warmup(&mut self) {
        self.warmup_snapshot = Some(self.raw_stats());
    }

    /// Advances one cycle: retire → issue → allocate → fetch.
    pub fn tick(&mut self, hier: &mut CacheHierarchy) {
        let _ = self.tick_progress(hier);
    }

    /// One cycle, reporting whether any pipeline stage made progress
    /// (retired, issued, allocated or fetched a µop, or took an I-cache
    /// miss). A no-progress cycle changes nothing but the clock and the
    /// bulk-reproducible per-cycle statistics, which is what makes
    /// [`Core::tick_or_skip`] safe: the skipped span is guaranteed to
    /// replay as idle ticks.
    pub fn tick_progress(&mut self, hier: &mut CacheHierarchy) -> bool {
        let cycle = self.cycle;
        if cycle.is_multiple_of(OCC_SAMPLE_PERIOD) {
            self.sample_occupancy(cycle);
        }
        let mut progress = self.retire_stage(cycle);
        progress |= self.issue_stage(hier, cycle);
        progress |= self.allocate_stage(cycle);
        progress |= self.fetch_stage(hier, cycle);
        self.cycle += 1;
        self.periodic_maintenance(hier);
        if self.use_timeq {
            self.drain_wake_hints(hier);
        }
        progress
    }

    /// Moves the wake hints the hierarchy (cache levels, DRAM, TACT)
    /// deposited during this tick into the event queue. Demand hints
    /// coalesce with the core's own completion tickets at the same
    /// cycle; any extra cycle only adds a bit-reproducible idle probe.
    fn drain_wake_hints(&mut self, hier: &mut CacheHierarchy) {
        let buf = hier.wake_hints();
        if buf.is_idle() {
            return;
        }
        let q = &mut self.timeq;
        buf.drain_into(&mut |req| {
            if let Err(bp) = q.post(req) {
                let _ = q.post(ServiceRequest::new(bp.retry_at, req.source));
            }
        });
    }

    /// Posts a wake reservation for `at`, absorbing [`Backpressure`]
    /// (a race with the queue clock re-posts as a zero-delay
    /// self-wake).
    ///
    /// [`Backpressure`]: catch_timeq::Backpressure
    fn post_wake(&mut self, at: u64, source: Source) {
        if let Err(bp) = self.timeq.post(ServiceRequest::new(at, source)) {
            let _ = self.timeq.post(ServiceRequest::new(bp.retry_at, source));
        }
    }

    /// The skip target for the active engine: [`Engine::Tick`]
    /// recomputes it by scanning ([`Core::next_event_cycle`]);
    /// [`Engine::TimeQ`] peeks the calendar queue. The queue may hold
    /// front-end reservations a fetchless drain loop would not scan
    /// for; probing those cycles is harmless (drain ticks neither
    /// sample nor account), so `include_fetch` only shapes the scan
    /// path. Public for the multi-programmed lockstep driver.
    pub fn next_wake_cycle(&mut self, include_fetch: bool) -> Option<u64> {
        if self.use_timeq {
            self.timeq.peek_next(self.cycle)
        } else {
            self.next_event_cycle(include_fetch)
        }
    }

    /// One scheduling quantum with stall skip-ahead: a normal tick,
    /// plus — when that tick made no progress and the configuration
    /// enables skipping — a jump straight to the next cycle at which
    /// anything architectural can happen. Statistics and event streams
    /// are bit-identical to per-cycle ticking.
    pub fn tick_or_skip(&mut self, hier: &mut CacheHierarchy) {
        let progress = self.tick_progress(hier);
        if !progress && self.config.skip_ahead {
            if let Some(target) = self.next_wake_cycle(true) {
                if target > self.cycle {
                    self.advance_to(hier, target, true);
                }
            }
        }
    }

    /// Records the periodic occupancy samples (always-on histograms) and
    /// mirrors them to the attached sink as counter events.
    fn sample_occupancy(&mut self, cycle: u64) {
        let rob_used = self.rob.len() as u64;
        let rob_cap = self.rob.capacity() as u64;
        let sched_cap = self.config.sched_window as u64;
        let sched_used = (self.rob.unstarted() as u64).min(sched_cap);
        // Completed fills are pruned lazily, so count live entries: a
        // fill with `done == cycle` still holds its MSHR at sample time
        // (the per-cycle loop pruned `done <= cycle - 1` last issue).
        let mshr_used = self
            .outstanding_loads
            .iter()
            .filter(|&&done| done >= cycle)
            .count() as u64;
        let mshr_cap = self.config.max_outstanding_loads as u64;
        self.rob_occ.record(rob_used, rob_cap);
        self.sched_occ.record(sched_used, sched_cap);
        self.mshr_occ.record(mshr_used, mshr_cap);
        if self.obs.wants(EventClass::OCCUPANCY) {
            let core = self.id as u32;
            for kind in [
                EventKind::RobOccupancy {
                    used: rob_used as u32,
                    cap: rob_cap as u32,
                },
                EventKind::SchedOccupancy {
                    used: sched_used as u32,
                    cap: sched_cap as u32,
                },
                EventKind::MshrOccupancy {
                    used: mshr_used as u32,
                    cap: mshr_cap as u32,
                },
            ] {
                self.obs
                    .emit(EventClass::OCCUPANCY, || Event { cycle, core, kind });
            }
        }
    }

    /// Ledger/bookkeeping housekeeping, every [`MAINT_PERIOD`] cycles.
    /// Every clock-advance path (tick, drain, skip-ahead, functional
    /// fast-forward) funnels through this or [`Core::maintenance_at`],
    /// so full and sampled runs cannot drift on boundary handling.
    fn periodic_maintenance(&mut self, hier: &mut CacheHierarchy) {
        if self.cycle.is_multiple_of(MAINT_PERIOD) {
            self.maintenance_at(hier, self.cycle);
        }
    }

    /// The maintenance body for a specific boundary cycle `now` (a
    /// multiple of [`MAINT_PERIOD`]): hierarchy ledger retirement plus
    /// pruning of store-forwarding entries older than the ROB.
    fn maintenance_at(&mut self, hier: &mut CacheHierarchy, now: u64) {
        hier.maintain(now);
        let floor = self
            .rob
            .entries()
            .front()
            .map(|e| e.id)
            .unwrap_or(self.next_id);
        self.last_store.retain(|_, id| *id >= floor);
    }

    /// The earliest cycle `>= self.cycle` at which a pipeline stage
    /// could possibly make progress, given that the tick that just ran
    /// made none. `include_fetch` is false for [`Core::drain`], whose
    /// loop never fetches. Returns `None` when no event source exists
    /// (only possible for a finished or deadlocked core).
    ///
    /// Every candidate is a *lower bound* on its source's next progress
    /// cycle, so jumping to the minimum can never step over work; an
    /// early candidate merely costs one extra idle probe tick. Public
    /// for the multi-programmed driver, which may only jump when every
    /// live core is idle and must use the minimum across cores.
    pub fn next_event_cycle(&mut self, include_fetch: bool) -> Option<u64> {
        let now = self.cycle;
        let prev = now.saturating_sub(1);
        let mut next = u64::MAX;
        // Retirement: the head's completion cycle, if it has issued.
        if let Some(done) = self.rob.head_completion() {
            next = next.min(done.max(now));
        }
        // Issue, unpromoted entries: the earliest wake-heap
        // reservation is a lower bound on the next cycle any of them
        // becomes issuable (an entry still waiting on an unissued
        // producer has no reservation, but that producer must issue
        // first and is itself covered here or below).
        if let Some(eff) = self.rob.next_wake_eff() {
            next = next.min(eff.max(now));
        }
        // Issue, promoted entries: one sitting inside the scheduler
        // window was issuable on the no-progress tick that brought us
        // here, so it is an MSHR-blocked load (port budgets cannot be
        // exhausted when nothing issued) — the earliest it can issue
        // is when the oldest outstanding fill frees its MSHR. Promoted
        // entries beyond the window enter it at a retirement, which
        // the head-completion candidate covers.
        let window = self.rob.len().min(self.config.sched_window);
        if self.rob.has_issuable_below(window) {
            match self
                .outstanding_loads
                .iter()
                .filter(|&&done| done > prev)
                .min()
            {
                Some(free_at) => next = next.min((*free_at).max(now)),
                // No live fill would mean it was not MSHR-blocked
                // after all; probe the current cycle rather than risk
                // stepping over an issue.
                None => next = next.min(now),
            }
        }
        // Fetch: resumes when the I-cache stall ends. A mispredict
        // block resolves at branch issue (covered above); a full fetch
        // buffer drains at allocation (also progress).
        if include_fetch
            && !self.frontend.blocked()
            && self.fetch_buffer.len() < self.config.fetch_buffer
            && !self.frontend.done(&self.trace)
        {
            next = next.min(self.frontend.stall_until().max(now));
        }
        (next != u64::MAX).then_some(next)
    }

    /// Jumps the clock from `self.cycle` to `target`, replaying the
    /// per-cycle side effects of the skipped idle span exactly as the
    /// naive loop would have produced them: occupancy samples (with
    /// their observability events) at every sample period, stalled
    /// fetch-cycle accounting, and periodic maintenance at every
    /// crossed boundary, in live-tick order. `with_fetch_stalls`
    /// mirrors whether the skipped loop would have run its fetch stage
    /// (false under [`Core::drain`], which also never samples). Public
    /// for the multi-programmed driver.
    pub fn advance_to(&mut self, hier: &mut CacheHierarchy, target: u64, with_fetch_stalls: bool) {
        let start = self.cycle;
        debug_assert!(target > start, "advance_to must move forward");
        if with_fetch_stalls {
            // Each skipped tick with fetch-buffer space and an active
            // I-cache stall counts one stalled cycle (ticks in
            // [start, target) below stall_until).
            if !self.frontend.blocked() && self.fetch_buffer.len() < self.config.fetch_buffer {
                let stalled = self
                    .frontend
                    .stall_until()
                    .min(target)
                    .saturating_sub(start);
                if stalled > 0 {
                    self.frontend.add_stall_cycles(stalled);
                }
            }
            // Samples land at multiples of OCC_SAMPLE_PERIOD in
            // [start, target); maintenance boundaries (multiples of
            // MAINT_PERIOD, itself a multiple of the sample period) in
            // (start, target]. The maintenance a tick performs for
            // cycle x runs at the end of tick x-1, so at a shared x it
            // precedes the sample the next tick opens with.
            let mut x = start.next_multiple_of(OCC_SAMPLE_PERIOD);
            while x <= target {
                if x > start && x.is_multiple_of(MAINT_PERIOD) {
                    self.maintenance_at(hier, x);
                }
                if x < target {
                    self.sample_occupancy(x);
                }
                x += OCC_SAMPLE_PERIOD;
            }
        } else {
            // Drain ticks neither sample nor fetch: only maintenance.
            let mut x = (start + 1).next_multiple_of(MAINT_PERIOD);
            while x <= target {
                self.maintenance_at(hier, x);
                x += MAINT_PERIOD;
            }
        }
        self.cycle = target;
    }

    /// Ticks without fetching until the pipeline is empty (fetch buffer
    /// and ROB both drained). Sampled runs call this at the end of a
    /// detailed interval so the subsequent fast-forward starts from a
    /// quiesced machine; the drained cycles fall in the unmeasured gap
    /// between interval snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline fails to drain within a generous cycle
    /// budget (a simulator bug).
    pub fn drain(&mut self, hier: &mut CacheHierarchy) {
        let pending = (self.rob.len() + self.fetch_buffer.len()) as u64;
        let budget = self.cycle + 1000 * pending + 1_000_000;
        while !(self.rob.is_empty() && self.fetch_buffer.is_empty()) {
            let cycle = self.cycle;
            let mut progress = self.retire_stage(cycle);
            progress |= self.issue_stage(hier, cycle);
            progress |= self.allocate_stage(cycle);
            self.cycle += 1;
            self.periodic_maintenance(hier);
            if !progress && self.config.skip_ahead {
                // Same skip as the full loop, minus the fetch event
                // source (drain never fetches) and minus occupancy
                // samples / stall accounting (drain ticks take none).
                if let Some(target) = self.next_wake_cycle(false) {
                    if target > self.cycle {
                        self.advance_to(hier, target, false);
                    }
                }
            }
            assert!(
                self.cycle < budget,
                "core {} failed to drain: likely deadlock at cycle {}",
                self.id,
                self.cycle
            );
        }
    }

    /// Functionally fast-forwards to trace position `until_op` (an op
    /// index, clamped to the trace length) without detailed timing.
    ///
    /// Every skipped op still performs *functional warmup*: code and data
    /// lines take the demand path through the hierarchy via
    /// [`CacheHierarchy::warm_access`] (tags, replacement, dirty state
    /// and DRAM row-buffer state all update), and branches train the
    /// predictor — so a following detailed interval starts against warm
    /// microarchitectural state. Not modelled during the skip: pipeline
    /// timing (one op per cycle is assumed), prefetchers, and the
    /// criticality detector/TACT learning, which retrain quickly once
    /// detailed simulation resumes.
    ///
    /// Requires a drained pipeline (see [`Core::drain`]); `retired` and
    /// `cycle` advance so interval accounting stays monotonic.
    pub fn fast_forward(&mut self, hier: &mut CacheHierarchy, until_op: usize) {
        debug_assert!(
            self.rob.is_empty() && self.fetch_buffer.is_empty(),
            "fast_forward requires a drained pipeline"
        );
        let until = until_op.min(self.trace.len());
        while self.frontend.cursor() < until {
            let op = self.trace.ops()[self.frontend.cursor()];
            if let Some(code_line) = self.frontend.functional_step(&op) {
                hier.warm_access(self.id, AccessKind::Code, code_line, self.cycle);
            }
            if let Some(mem) = op.mem {
                let kind = if op.class == OpClass::Store {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                hier.warm_access(self.id, kind, mem.addr.line(), self.cycle);
            }
            self.retired += 1;
            self.cycle += 1;
            self.periodic_maintenance(hier);
        }
        self.frontend.end_fast_forward();
        // Dependence bookkeeping references op ids that are now
        // functionally retired; clear it so resumed detailed execution
        // treats their consumers as ready.
        self.last_writer = [None; ArchReg::COUNT];
        self.last_store.clear();
        self.outstanding_loads.clear();
        // Reservations for the abandoned detailed interval are
        // meaningless at the fast-forwarded clock; drop them.
        self.timeq.clear();
    }

    /// Runs the core to completion against `hier`, returning final stats.
    ///
    /// # Panics
    ///
    /// Panics if the core deadlocks (a cycle budget of `1000 × ops +
    /// 10_000_000` is exceeded), which would indicate a simulator bug.
    pub fn run_to_completion(&mut self, hier: &mut CacheHierarchy) -> CoreStats {
        let budget = 1000 * self.trace.len() as u64 + 10_000_000;
        while !self.done() {
            self.tick_or_skip(hier);
            assert!(
                self.cycle < budget,
                "core {} exceeded cycle budget: likely deadlock at cycle {}",
                self.id,
                self.cycle
            );
        }
        self.stats()
    }

    fn retire_stage(&mut self, cycle: u64) -> bool {
        let mut retired_any = false;
        for _ in 0..self.config.retire_width {
            let Some(entry) = self.rob.try_retire(cycle) else {
                break;
            };
            retired_any = true;
            self.retired += 1;
            self.obs.emit(EventClass::CORE, || Event {
                cycle,
                core: self.id as u32,
                kind: EventKind::Retire {
                    pc: entry.op.pc.get(),
                },
            });

            // Criticality feed.
            let mut inst = RetiredInst {
                pc: entry.op.pc,
                is_load: entry.op.class == OpClass::Load,
                hit_level: entry.hit_level,
                exec_latency: entry.complete.saturating_sub(entry.dispatch),
                src_producers: [entry.deps[0], entry.deps[1], entry.deps[2]],
                mem_producer: entry.deps[3],
                mispredicted_branch: entry.mispredicted,
            };
            if !inst.is_load {
                inst.hit_level = None;
            }
            self.detector.on_retire_at(inst, cycle);

            if self.retired >= self.critical_sync_at {
                self.critical_sync_at = self.retired + CRITICAL_SYNC_INTERVAL;
                if self.config.tact.data {
                    let pcs = self.detector.critical_pcs();
                    self.mem.note_critical_pcs(&pcs);
                }
            }
        }
        retired_any
    }

    fn issue_stage(&mut self, hier: &mut CacheHierarchy, cycle: u64) -> bool {
        let mut int_budget = self.config.ports.int_ports;
        let mut fp_budget = self.config.ports.fp_ports;
        let mut load_budget = self.config.ports.load_ports;
        let mut store_budget = self.config.ports.store_ports;
        let mut issued_any = false;

        // Pull every wake reservation due by now into the issuable
        // mask, then scan only that mask — O(issuable) per cycle. A
        // promoted entry's effective-ready cycle has passed by
        // construction, so no per-entry readiness recheck is needed.
        self.rob.promote_ready(cycle);
        let window = self.rob.len().min(self.config.sched_window);
        let mut pos = 0;
        // Ascending mask order is deque order, so issue priority (and
        // with it every counter) is identical to the full window walk.
        while let Some(i) = self.rob.next_issuable_at_or_after(pos) {
            if i >= window {
                break;
            }
            pos = i + 1;
            if int_budget + fp_budget + load_budget + store_budget == 0 {
                break;
            }
            let entry = &self.rob.entries()[i];
            let class = entry.op.class;
            if class == OpClass::Load
                && self.outstanding_loads.len() >= self.config.max_outstanding_loads
            {
                // MSHR fills are pruned lazily — only when the list hits
                // the cap — so the common case does no per-cycle scan.
                // Everything kept (and everything pushed this cycle)
                // completes after `cycle`, so length = live occupancy.
                self.outstanding_loads.retain(|&done| done > cycle);
                if self.outstanding_loads.len() >= self.config.max_outstanding_loads {
                    continue;
                }
            }
            let budget = match class {
                OpClass::Load => &mut load_budget,
                OpClass::Store => &mut store_budget,
                OpClass::FpAdd | OpClass::FpMul => &mut fp_budget,
                _ => &mut int_budget,
            };
            if *budget == 0 {
                continue;
            }
            *budget -= 1;
            issued_any = true;

            let (complete, hit_level) = self.execute(hier, i, cycle);
            if class == OpClass::Load && hit_level.is_some_and(|l| l != catch_cache::Level::L1) {
                self.outstanding_loads.push(complete);
            }
            let entry = self.rob.entry_mut(i);
            entry.hit_level = hit_level;
            let mispredicted = entry.mispredicted;
            let id = entry.id;
            let pc = entry.op.pc.get();
            self.rob.start(i, cycle, complete);
            if self.use_timeq && complete > cycle + 1 {
                // One reservation covers every consequence of this
                // completion: head retirement, consumer readiness, and
                // the MSHR slot a miss fill frees. A wake at
                // `cycle + 1` is provably dead and not posted: this
                // tick issued, so the next tick runs unskipped — and
                // any peek after it prunes the ticket as stale.
                self.post_wake(complete, Source::Exec);
            }
            self.obs.emit(EventClass::CORE, || Event {
                cycle,
                core: self.id as u32,
                kind: EventKind::Exec {
                    pc,
                    latency: complete - cycle,
                },
            });

            if mispredicted && self.pending_redirect == Some(id) {
                self.pending_redirect = None;
                let resume = complete + self.config.mispredict_penalty;
                self.frontend.resume_after_redirect(resume);
                if self.use_timeq {
                    self.post_wake(resume, Source::Frontend);
                }
            }
        }
        issued_any
    }

    fn execute(
        &mut self,
        hier: &mut CacheHierarchy,
        index: usize,
        cycle: u64,
    ) -> (u64, Option<catch_cache::Level>) {
        let entry = &self.rob.entries()[index];
        let op = entry.op;
        match op.class {
            OpClass::Load => {
                // Store-to-load forwarding: the producing store is still in
                // the window (not yet retired).
                if let Some(sid) = entry.deps[3] {
                    if self.rob.producer_ready_at(sid) != Some(0) {
                        self.mem.note_forwarded_load();
                        return (cycle + 2, Some(catch_cache::Level::L1));
                    }
                }
                let feeder = entry.feeder;
                let (latency, level) = self.mem.load(hier, &op, feeder, cycle, &self.detector);
                (cycle + latency, Some(level))
            }
            OpClass::Store => {
                self.mem.store(hier, &op, cycle);
                (cycle + self.config.latencies.of(OpClass::Store), None)
            }
            class => (cycle + self.config.latencies.of(class), None),
        }
    }

    fn allocate_stage(&mut self, cycle: u64) -> bool {
        let mut allocated_any = false;
        for _ in 0..self.config.alloc_width {
            if !self.rob.has_space() {
                break;
            }
            let Some((op, mispredicted)) = self.fetch_buffer.pop_front() else {
                break;
            };
            allocated_any = true;
            let id = self.next_id;
            self.next_id += 1;

            // Register and memory dependences, in program order.
            let mut deps = [None; 4];
            for (slot, src) in deps.iter_mut().zip(op.sources()) {
                *slot = self.last_writer[src.index()];
            }
            if op.class == OpClass::Load {
                if let Some(mem) = op.mem {
                    deps[3] = self.last_store.get(&(mem.addr.get() & !7)).copied();
                }
            }
            if let Some(dst) = op.dst {
                self.last_writer[dst.index()] = Some(id);
            }
            if op.class == OpClass::Store {
                if let Some(mem) = op.mem {
                    self.last_store.insert(mem.addr.get() & !7, id);
                }
            }
            if mispredicted {
                self.pending_redirect = Some(id);
            }
            // Feeder tracking happens in program order at allocation: hint
            // first (producers only), then fold this op into the flow.
            let mut entry = RobEntry::new(id, op, deps, mispredicted);
            if op.class == OpClass::Load {
                entry.feeder = self.mem.feeder_hint(&op);
            }
            self.mem.on_alloc_op(&op);
            self.rob.allocate(entry, cycle);
            self.obs.emit(EventClass::CORE, || Event {
                cycle,
                core: self.id as u32,
                kind: EventKind::Alloc { pc: op.pc.get() },
            });
        }
        allocated_any
    }

    fn fetch_stage(&mut self, hier: &mut CacheHierarchy, cycle: u64) -> bool {
        let space = self
            .config
            .fetch_buffer
            .saturating_sub(self.fetch_buffer.len());
        if space == 0 {
            return false;
        }
        // An I-cache miss fetches nothing but is still progress: it
        // accesses the hierarchy, arms the stall timer and may issue
        // runahead prefetches. (A stalled cycle's counter increment is
        // not progress — the skip path bulk-accounts those.)
        let misses_before = self.frontend.stats().icache_misses;
        let pushed = self
            .frontend
            .fetch(&self.trace, cycle, hier, space, &mut self.fetch_buffer);
        let missed = self.frontend.stats().icache_misses != misses_before;
        if missed && self.use_timeq {
            // Fetch resumes when the I-cache stall ends.
            self.post_wake(self.frontend.stall_until(), Source::Frontend);
        }
        pushed > 0 || missed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_cache::{FixedLatencyBackend, HierarchyConfig, Level};
    use catch_trace::{Addr, TraceBuilder};

    fn hier() -> CacheHierarchy {
        CacheHierarchy::new(
            &HierarchyConfig::skylake_server(1),
            Box::new(FixedLatencyBackend::new(200)),
        )
    }

    fn r(i: u8) -> ArchReg {
        ArchReg::new(i)
    }

    #[test]
    fn independent_alus_reach_high_ipc() {
        let mut b = TraceBuilder::new("ilp");
        let top = b.label();
        for rep in 0..500 {
            b.jump_to(top);
            for i in 0..8 {
                b.alu(r(i), &[]);
            }
            b.backedge(top, rep != 499);
        }
        let trace = b.build();
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let mut core = Core::new(0, trace, config);
        let stats = core.run_to_completion(&mut hier());
        assert!(
            stats.ipc() > 2.5,
            "independent ALU stream should issue near width: IPC {}",
            stats.ipc()
        );
    }

    #[test]
    fn dependent_chain_is_serialised() {
        let mut b = TraceBuilder::new("chain");
        b.alu(r(1), &[]);
        for _ in 0..2000 {
            b.alu(r(1), &[r(1)]);
        }
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let mut core = Core::new(0, b.build(), config);
        let stats = core.run_to_completion(&mut hier());
        assert!(
            stats.ipc() < 1.2,
            "dependent ALU chain is ~1 IPC: {}",
            stats.ipc()
        );
    }

    #[test]
    fn load_latency_gates_dependent_chain() {
        // Pointer-chase through L1-resident lines vs. far memory.
        let chain = |lines: u64| {
            let mut b = TraceBuilder::new("ptr");
            let top = b.label();
            for i in 0..1500u64 {
                b.jump_to(top);
                let addr = Addr::new((i % lines) * 64);
                b.load_dep(r(1), addr, 0, &[r(1)]);
                b.backedge(top, i != 1499);
            }
            b.build()
        };
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        config.baseline_prefetchers = false;
        let small = Core::new(0, chain(4), config.clone())
            .run_to_completion(&mut hier())
            .ipc();
        let large = Core::new(0, chain(200_000), config)
            .run_to_completion(&mut hier())
            .ipc();
        assert!(
            small > 3.0 * large,
            "L1-resident chase {small} must beat DRAM chase {large}"
        );
    }

    #[test]
    fn store_to_load_forwarding_is_fast() {
        let mut b = TraceBuilder::new("fwd");
        b.alu(r(1), &[]);
        for i in 0..500u64 {
            b.store(Addr::new(0x5000 + i * 8), &[r(1)]);
            b.load_dep(r(2), Addr::new(0x5000 + i * 8), 0, &[]);
        }
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let mut core = Core::new(0, b.build(), config);
        let stats = core.run_to_completion(&mut hier());
        assert!(stats.memory.forwarded > 400, "{}", stats.memory.forwarded);
    }

    #[test]
    fn mispredicts_cost_cycles() {
        let body = |pattern_random: bool| {
            let mut b = TraceBuilder::new("br");
            let mut x = 7u64;
            let top = b.label();
            for i in 0..2000u64 {
                b.jump_to(top);
                b.alu(r(1), &[]);
                x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
                let taken = if pattern_random { x >> 63 == 1 } else { true };
                let tgt = b.cursor().advance(8);
                b.cond_branch(taken, tgt, &[r(1)]);
                let _ = i;
            }
            b.build()
        };
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let predictable = Core::new(0, body(false), config.clone())
            .run_to_completion(&mut hier())
            .ipc();
        let random = Core::new(0, body(true), config)
            .run_to_completion(&mut hier())
            .ipc();
        assert!(
            predictable > 1.5 * random,
            "random branches must hurt: {predictable} vs {random}"
        );
    }

    #[test]
    fn detector_sees_all_retired_instructions() {
        let mut b = TraceBuilder::new("t");
        for i in 0..1000u64 {
            b.load(r(1), Addr::new((i % 64) * 64), 0);
            b.alu(r(2), &[r(1)]);
        }
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let mut core = Core::new(0, b.build(), config);
        let stats = core.run_to_completion(&mut hier());
        assert_eq!(stats.detector.retired, 2000);
        assert_eq!(stats.instructions, 2000);
    }

    #[test]
    fn mshr_cap_limits_memory_parallelism() {
        // Independent misses: generous MSHRs overlap them; a single MSHR
        // serialises them.
        let build = || {
            let mut b = TraceBuilder::new("mlp");
            for i in 0..64u64 {
                b.load(r(1), Addr::new(i * 4096), 0);
            }
            b.build()
        };
        let mut wide = CoreConfig::baseline();
        wide.perfect_l1i = true;
        wide.baseline_prefetchers = false;
        wide.max_outstanding_loads = 16;
        let mut narrow = wide.clone();
        narrow.max_outstanding_loads = 1;
        let run = |cfg: CoreConfig| {
            Core::new(0, build(), cfg)
                .run_to_completion(&mut hier())
                .cycles
        };
        let fast = run(wide);
        let slow = run(narrow);
        assert!(
            slow > 3 * fast,
            "one MSHR must serialise misses: {slow} vs {fast}"
        );
    }

    #[test]
    fn drain_empties_pipeline_without_fetching() {
        let mut b = TraceBuilder::new("t");
        for i in 0..200u64 {
            b.load(r(1), Addr::new(i * 64), 0);
        }
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let mut h = hier();
        let mut core = Core::new(0, b.build(), config);
        for _ in 0..20 {
            core.tick(&mut h);
        }
        let fetched_before = core.frontend.cursor();
        core.drain(&mut h);
        assert!(core.rob.is_empty());
        assert!(core.fetch_buffer.is_empty());
        assert_eq!(
            core.retired(),
            fetched_before as u64,
            "drain retires exactly what was fetched"
        );
        assert_eq!(
            core.frontend.cursor(),
            fetched_before,
            "drain must not fetch"
        );
    }

    #[test]
    fn fast_forward_advances_and_warms_caches() {
        // Loads cycling over a small 128-line set: after fast-forwarding
        // the first half, the detailed second half should be L1 hits.
        let mut b = TraceBuilder::new("ff");
        for i in 0..2000u64 {
            b.load(r(1), Addr::new((i % 128) * 64), 0);
        }
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        config.baseline_prefetchers = false;
        let mut h = hier();
        let mut core = Core::new(0, b.build(), config);
        core.fast_forward(&mut h, 1000);
        assert_eq!(core.retired(), 1000);
        let stats = core.run_to_completion(&mut h);
        assert_eq!(stats.instructions, 2000);
        // Only the 1000 detailed loads touch the memory interface, and
        // the warmed working set makes them L1 hits.
        assert_eq!(stats.memory.loads, 1000);
        assert!(
            stats.memory.loads_by_level[0] > 950,
            "warmed set must hit in L1: {:?}",
            stats.memory.loads_by_level
        );
    }

    #[test]
    fn fast_forward_trains_branch_predictor() {
        // An alternating branch mispredicts while the predictor learns
        // the pattern; a fast-forwarded first half absorbs that learning.
        let body = || {
            let mut b = TraceBuilder::new("br");
            for i in 0..4000u64 {
                b.alu(r(1), &[]);
                let tgt = b.cursor().advance(8);
                b.cond_branch(i % 2 == 0, tgt, &[r(1)]);
            }
            b.build()
        };
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        let cold = {
            let mut core = Core::new(0, body(), config.clone());
            core.run_to_completion(&mut hier()).branches
        };
        let warmed = {
            let mut h = hier();
            let mut core = Core::new(0, body(), config);
            core.fast_forward(&mut h, 4000);
            core.end_warmup();
            core.run_to_completion(&mut h).branches
        };
        assert!(cold.cond_mispredicts > 0, "cold predictor must learn");
        assert!(
            warmed.cond_mispredicts < cold.cond_mispredicts,
            "warmup must cut mispredicts: cold {} vs warmed {}",
            cold.cond_mispredicts,
            warmed.cond_mispredicts
        );
    }

    #[test]
    fn attached_sink_observes_pipeline_events_without_perturbing_stats() {
        use catch_obs::{Obs, VecSink};
        use std::sync::{Arc, Mutex};
        let build = || {
            let mut b = TraceBuilder::new("obs");
            for i in 0..400u64 {
                b.load(r(1), Addr::new((i % 512) * 64), 0);
                b.alu(r(2), &[r(1)]);
            }
            b.build()
        };
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;

        let sink = Arc::new(Mutex::new(VecSink::new()));
        let mut traced_core = Core::new(0, build(), config.clone());
        traced_core.set_obs(Obs::attached(sink.clone(), catch_obs::EventClass::ALL));
        let traced = traced_core.run_to_completion(&mut hier());

        let baseline = Core::new(0, build(), config).run_to_completion(&mut hier());
        assert_eq!(traced, baseline, "tracing must not perturb the run");

        let events = sink.lock().unwrap().take();
        let names: Vec<&str> = events.iter().map(|e| e.name()).collect();
        for expected in [
            "core.alloc",
            "core.exec",
            "core.retire",
            "core.rob_occupancy",
            "core.sched_occupancy",
            "core.mshr_occupancy",
        ] {
            assert!(names.contains(&expected), "{expected} missing: {names:?}");
        }
        assert!(traced.rob_occ.samples > 0, "always-on hist must sample");
        assert!(
            events.iter().all(|e| e.core == 0),
            "events attributed to core 0"
        );
    }

    #[test]
    fn loads_by_level_accounts_all_loads() {
        let mut b = TraceBuilder::new("t");
        for i in 0..500u64 {
            b.load(r(1), Addr::new(i * 64), 0);
        }
        let mut config = CoreConfig::baseline();
        config.perfect_l1i = true;
        config.baseline_prefetchers = false;
        let mut core = Core::new(0, b.build(), config);
        let stats = core.run_to_completion(&mut hier());
        let sum: u64 = stats.memory.loads_by_level.iter().sum();
        assert_eq!(sum, stats.memory.loads);
        assert_eq!(stats.memory.loads, 500);
        // Cold sequential loads: every line is a fresh memory access.
        assert!(stats.memory.loads_by_level[3] > 400);
        let _ = Level::Memory;
    }
}
