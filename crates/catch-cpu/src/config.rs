//! Core configuration and oracle modes.

use catch_cache::Level;
use catch_criticality::{DetectorConfig, HeuristicConfig};
use catch_prefetch::TactConfig;
use catch_timeq::Engine;
use catch_trace::OpClass;

/// Execution latency per op class, in cycles.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ExecLatencies {
    /// Simple integer ops.
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Divides.
    pub div: u64,
    /// FP add.
    pub fp_add: u64,
    /// FP multiply / FMA.
    pub fp_mul: u64,
    /// Branch resolution.
    pub branch: u64,
    /// Store (address/data into the store buffer).
    pub store: u64,
}

impl ExecLatencies {
    /// Skylake-like latencies.
    pub fn skylake() -> Self {
        ExecLatencies {
            alu: 1,
            mul: 3,
            div: 20,
            fp_add: 4,
            fp_mul: 4,
            branch: 1,
            store: 1,
        }
    }

    /// Latency of a non-load class.
    pub fn of(&self, class: OpClass) -> u64 {
        match class {
            OpClass::Alu | OpClass::Nop => self.alu,
            OpClass::Mul => self.mul,
            OpClass::Div => self.div,
            OpClass::FpAdd => self.fp_add,
            OpClass::FpMul => self.fp_mul,
            OpClass::Branch => self.branch,
            OpClass::Store => self.store,
            OpClass::Load => unreachable!("load latency comes from the hierarchy"),
        }
    }
}

impl Default for ExecLatencies {
    fn default() -> Self {
        ExecLatencies::skylake()
    }
}

/// Issue-port budget per cycle per class.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PortConfig {
    /// Integer ALU / branch ports.
    pub int_ports: u32,
    /// FP ports.
    pub fp_ports: u32,
    /// Load ports (AGU + data).
    pub load_ports: u32,
    /// Store ports.
    pub store_ports: u32,
}

impl PortConfig {
    /// Skylake-like port counts.
    pub fn skylake() -> Self {
        PortConfig {
            int_ports: 4,
            fp_ports: 2,
            load_ports: 2,
            store_ports: 1,
        }
    }
}

impl Default for PortConfig {
    fn default() -> Self {
        PortConfig::skylake()
    }
}

/// The latency oracles used by the paper's motivation studies.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum LoadOracle {
    /// Normal operation.
    #[default]
    None,
    /// Figure 3/4: loads that hit at `level` observe the latency of the
    /// next-outer level instead. With `only_noncritical`, loads whose PC
    /// the detector flags critical keep their real latency.
    Demote {
        /// The level whose hits are slowed.
        level: Level,
        /// Spare critical loads.
        only_noncritical: bool,
    },
    /// Figure 5: critical loads (bounded critical-PC table) that would hit
    /// the L2 or LLC are served at L1 latency ("zero-time prefetch").
    CriticalPrefetch,
    /// Figure 5 "All PC" bar: every load that would hit the L2 or LLC is
    /// served at L1 latency.
    PrefetchAll,
}

/// Which criticality-detection mechanism the core uses.
#[derive(Clone, Debug, PartialEq)]
pub enum DetectorKind {
    /// The paper's buffered-DDG graph walk.
    Graph,
    /// Symptom heuristics (shadow-of-mispredict, long latency) — the
    /// alternative the paper argues over-flags PCs.
    Heuristic(HeuristicConfig),
}

/// Which TACT components the core drives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TactMode {
    /// Data prefetchers (Cross/Deep/Feeder) — per-component flags live in
    /// [`TactConfig`].
    pub data: bool,
    /// Code runahead prefetcher.
    pub code: bool,
}

impl TactMode {
    /// Everything off (the baseline machine).
    pub fn off() -> Self {
        TactMode {
            data: false,
            code: false,
        }
    }

    /// Everything on (full CATCH).
    pub fn full() -> Self {
        TactMode {
            data: true,
            code: true,
        }
    }
}

/// Full configuration of one core.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreConfig {
    /// Fetch width (µops/cycle).
    pub fetch_width: usize,
    /// Allocation width into the ROB.
    pub alloc_width: usize,
    /// Retire width.
    pub retire_width: usize,
    /// ROB entries (paper: 224).
    pub rob_size: usize,
    /// Scheduler window examined for issue each cycle.
    pub sched_window: usize,
    /// Fetch-buffer entries between fetch and allocate.
    pub fetch_buffer: usize,
    /// Execution latencies.
    pub latencies: ExecLatencies,
    /// Issue ports.
    pub ports: PortConfig,
    /// Front-end redirect penalty after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
    /// Baseline prefetchers (L1 stride + L2 multi-stream) enabled.
    pub baseline_prefetchers: bool,
    /// TACT components enabled.
    pub tact: TactMode,
    /// TACT data-prefetcher configuration.
    pub tact_config: TactConfig,
    /// Criticality-detector configuration.
    pub detector: DetectorConfig,
    /// Detection mechanism (graph walk vs symptom heuristics).
    pub detector_kind: DetectorKind,
    /// Oracle mode for motivation studies.
    pub oracle: LoadOracle,
    /// Code always hits the L1I (used by the Figure 5 oracle study).
    pub perfect_l1i: bool,
    /// Memory latency assumed when demoting LLC hits (Figure 4's
    /// "LLC hits at memory latency").
    pub demoted_memory_latency: u64,
    /// L1D MSHR entries: maximum loads outstanding to the hierarchy.
    pub max_outstanding_loads: usize,
    /// Code lines the runahead may prefetch per stall.
    pub code_runahead_lines: usize,
    /// Stall skip-ahead: when a tick makes no pipeline progress, jump
    /// the clock to the next event (earliest MSHR fill, readiness,
    /// fetch resume) instead of ticking idle cycles. Statistics, event
    /// streams and occupancy histograms are bit-identical either way
    /// (asserted by the `skip_ahead_parity` suite); the toggle exists
    /// for that parity testing and for measuring the speedup.
    pub skip_ahead: bool,
    /// Which cycle engine drives the run: the reference per-cycle tick
    /// loop, or the `timeq` event queue that jumps between posted
    /// `ServiceRequest` timestamps. Both are bit-identical (asserted by
    /// the `engine_parity` suite); with `skip_ahead` off the engine is
    /// irrelevant — every cycle ticks.
    pub engine: Engine,
}

impl CoreConfig {
    /// The paper's Skylake-like baseline core: 4-wide, 224 ROB, baseline
    /// prefetchers on, TACT off.
    pub fn baseline() -> Self {
        CoreConfig {
            fetch_width: 4,
            alloc_width: 4,
            retire_width: 4,
            rob_size: 224,
            sched_window: 97,
            fetch_buffer: 16,
            latencies: ExecLatencies::skylake(),
            ports: PortConfig::skylake(),
            mispredict_penalty: 15,
            baseline_prefetchers: true,
            tact: TactMode::off(),
            tact_config: TactConfig::paper(),
            detector: DetectorConfig::paper(),
            detector_kind: DetectorKind::Graph,
            oracle: LoadOracle::None,
            perfect_l1i: false,
            demoted_memory_latency: 200,
            max_outstanding_loads: 16,
            code_runahead_lines: 8,
            // `CATCH_NO_SKIP=1` forces the naive per-cycle loop — used
            // by the parity suite and the CI throughput comparison.
            skip_ahead: std::env::var_os("CATCH_NO_SKIP").is_none(),
            // `CATCH_ENGINE=tick|timeq` selects the cycle engine (the
            // parity suite sets it per-System instead).
            engine: Engine::from_env(),
        }
    }

    /// Baseline plus the full CATCH mechanisms (criticality + all TACT).
    pub fn catch() -> Self {
        CoreConfig {
            tact: TactMode::full(),
            ..CoreConfig::baseline()
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_core() {
        let c = CoreConfig::baseline();
        assert_eq!(c.rob_size, 224);
        assert_eq!(c.fetch_width, 4);
        assert!(c.baseline_prefetchers);
        assert!(!c.tact.data);
    }

    #[test]
    fn catch_enables_tact() {
        let c = CoreConfig::catch();
        assert!(c.tact.data && c.tact.code);
    }

    #[test]
    fn latencies_cover_all_non_load_classes() {
        let l = ExecLatencies::skylake();
        for class in [
            OpClass::Alu,
            OpClass::Mul,
            OpClass::Div,
            OpClass::FpAdd,
            OpClass::FpMul,
            OpClass::Branch,
            OpClass::Store,
            OpClass::Nop,
        ] {
            assert!(l.of(class) >= 1);
        }
    }

    #[test]
    #[should_panic]
    fn load_latency_is_not_static() {
        let _ = ExecLatencies::skylake().of(OpClass::Load);
    }
}
