//! Shared driver for the figure-regeneration bench targets.
//!
//! Each `cargo bench` target under `benches/` regenerates one table or
//! figure of the CATCH paper by calling [`run_experiment`] with its
//! experiment id. The evaluation scale can be adjusted with environment
//! variables:
//!
//! * `CATCH_OPS` — micro-ops per workload (default: the standard scale).
//! * `CATCH_WARMUP` — warm-up micro-ops excluded from measurement.
//! * `CATCH_SEED` — trace-generation seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use catch_core::experiments::{self, EvalConfig};
use std::time::Instant;

/// Reads the evaluation scale from the environment (see crate docs).
pub fn eval_from_env() -> EvalConfig {
    let mut eval = EvalConfig::standard();
    if let Some(ops) = std::env::var("CATCH_OPS").ok().and_then(|v| v.parse().ok()) {
        eval.ops = ops;
    }
    if let Some(warmup) = std::env::var("CATCH_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        eval.warmup = warmup;
    }
    if let Some(seed) = std::env::var("CATCH_SEED").ok().and_then(|v| v.parse().ok()) {
        eval.seed = seed;
    }
    eval
}

/// Runs one experiment by id and prints its report (the same rows/series
/// the paper's figure or table reports).
pub fn run_experiment(id: &str) {
    let eval = eval_from_env();
    eprintln!(
        "[catch-bench] running {id} at ops={} warmup={} seed={}",
        eval.ops, eval.warmup, eval.seed
    );
    let start = Instant::now();
    let report = experiments::run(id, &eval);
    println!("{report}");
    eprintln!("[catch-bench] {id} finished in {:.1}s", start.elapsed().as_secs_f64());
}
