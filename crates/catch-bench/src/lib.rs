//! Shared driver for the figure-regeneration bench targets.
//!
//! Each `cargo bench` target under `benches/` regenerates one table or
//! figure of the CATCH paper by calling [`run_experiment`] with its
//! experiment id, timed by the first-party [`catch_harness`] bench
//! harness (warm-up + timed iterations, min/median/mean wall clock and
//! throughput; no external bench framework). The evaluation scale can be
//! adjusted with environment variables:
//!
//! * `CATCH_OPS` — micro-ops per workload (default: the standard scale).
//! * `CATCH_WARMUP` — warm-up micro-ops excluded from measurement.
//! * `CATCH_SEED` — trace-generation seed.
//! * `CATCH_FIDELITY` — model rung (`fast` | `lite` | `ooo`; default
//!   `ooo`). The two throughput-tracking benches (`sim_throughput`,
//!   `suite_throughput`) ignore this and pin the OOO reference rung so
//!   their checked-in baselines stay comparable across runs.
//! * `CATCH_JOBS` — worker threads for suite runs (default: all cores).
//! * `CATCH_BENCH_ITERS` / `CATCH_BENCH_WARMUP_ITERS` — timed and
//!   warm-up iterations of the whole experiment (defaults 3 and 1).
//! * `CATCH_BENCH_JSON` — also print a machine-readable JSON summary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use catch_core::experiments::{self, EvalConfig, Fidelity};
use catch_harness::Harness;

/// Reads the evaluation scale from the environment (see crate docs).
pub fn eval_from_env() -> EvalConfig {
    let mut eval = EvalConfig::standard();
    if let Some(ops) = std::env::var("CATCH_OPS").ok().and_then(|v| v.parse().ok()) {
        eval.ops = ops;
    }
    if let Some(warmup) = std::env::var("CATCH_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        eval.warmup = warmup;
    }
    if let Some(seed) = std::env::var("CATCH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        eval.seed = seed;
    }
    if let Some(fidelity) = std::env::var("CATCH_FIDELITY")
        .ok()
        .and_then(|v| Fidelity::parse(&v).ok())
    {
        eval.fidelity = fidelity;
    }
    eval
}

/// Forces the OOO reference rung, warning when the environment asked
/// for another one. The throughput-tracking benches call this so their
/// checked-in `reference` blocks always measure the same model.
pub fn pin_ooo(eval: &mut EvalConfig) {
    if eval.fidelity != Fidelity::Ooo {
        eprintln!(
            "[catch-bench] CATCH_FIDELITY={} ignored: throughput baselines are \
             measured on the ooo reference rung",
            eval.fidelity.label()
        );
        eval.fidelity = Fidelity::Ooo;
    }
}

/// Runs one experiment by id, prints its report (the same rows/series
/// the paper's figure or table reports) and a wall-clock summary from
/// the bench harness.
pub fn run_experiment(id: &str) {
    let eval = eval_from_env();
    eprintln!(
        "[catch-bench] running {id} at ops={} warmup={} seed={}",
        eval.ops, eval.warmup, eval.seed
    );
    let mut harness = Harness::new(format!("experiment {id}"));
    let mut report = None;
    // Nominal throughput unit: µops of one workload trace (experiments
    // differ in how many (workload, config) runs they fan out, so this is
    // a relative, not absolute, simulation rate).
    harness.bench(id, eval.ops as u64, || {
        report = Some(experiments::run(id, &eval));
    });
    println!("{}", report.expect("at least one timed iteration"));
    harness.report();
}
