//! Ablation studies of the CATCH design choices (see DESIGN.md).

fn main() {
    catch_bench::run_experiment("ablations");
}
