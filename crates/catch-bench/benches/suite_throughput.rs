//! Full-registry throughput benchmark: wall time to regenerate every
//! experiment, in three cache regimes, written to `BENCH_suite.json`
//! at the repo root so the suite-level perf trajectory is tracked
//! in-tree (the per-simulation trajectory lives in
//! `BENCH_throughput.json`).
//!
//! Three timed passes over the whole registry (`experiments::all_ids`):
//!
//! 1. **cold** — cache off, one experiment at a time: every experiment
//!    re-simulates its own configurations, as the registry did before
//!    the run cache existed.
//! 2. **deduped** — one `experiments::run_all` invocation against an
//!    empty disk-backed cache: all experiments' suite requests collapse
//!    to one deduplicated work queue (and the pass populates the cache
//!    directory for the next one).
//! 3. **warm** — `run_all` again with the in-memory cache dropped:
//!    every suite simulation loads from disk.
//!
//! The three passes must render byte-identical reports (asserted here,
//! and by the `cache_parity` suite at test scale).
//!
//! Modes (beyond the usual `CATCH_*` scale variables):
//!
//! * default — measure and print; if `BENCH_suite.json` exists, also
//!   print the delta against its checked-in reference.
//! * `CATCH_BLESS=1` — rewrite `BENCH_suite.json`: measured numbers
//!   become the new `reference`; the `pre_pr` block (the frozen
//!   before-this-PR full-registry measurement) is preserved verbatim
//!   when present, else seeded from this run's cold pass.
//! * `CATCH_BENCH_CHECK=1` — CI gate: exit non-zero when the warm pass
//!   is not at least `CATCH_SUITE_MIN_SPEEDUP` (default 2.0) times
//!   faster than the cold pass, or when any pass's report bytes differ.

use catch_bench::{eval_from_env, pin_ooo};
use catch_core::experiments::{self, EvalConfig};
use catch_core::{CacheMode, RunCache};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Default CI floor for cold-vs-warm speedup.
const DEFAULT_MIN_SPEEDUP: f64 = 2.0;

fn repo_root() -> PathBuf {
    // crates/catch-bench -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("repo root exists")
}

/// Extracts the JSON object following `"key":` by brace counting (the
/// file is machine-written by this benchmark).
fn extract_object(json: &str, key: &str) -> Option<String> {
    let at = json.find(&format!("\"{key}\""))?;
    let open = at + json[at..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts the number following `"key":` inside `json`.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{key}\""))?;
    let rest = &json[at..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Renders every experiment's report as one string (byte-identity probe).
fn render(reports: &[(String, catch_core::report::ExperimentReport)]) -> String {
    reports
        .iter()
        .map(|(_, r)| r.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let mut eval: EvalConfig = eval_from_env();
    pin_ooo(&mut eval);
    let ids = experiments::all_ids();
    eprintln!(
        "[suite_throughput] {} experiments at ops={} warmup={} seed={}",
        ids.len(),
        eval.ops,
        eval.warmup,
        eval.seed
    );
    let cache = RunCache::global();
    let dir = std::env::temp_dir().join(format!("catch-suite-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Pass 1: cold, cache off, per-experiment (the pre-run-cache shape).
    cache.set_mode(CacheMode::Off);
    cache.reset_memory();
    let t = Instant::now();
    let cold_reports: Vec<(String, _)> = ids
        .iter()
        .map(|id| (id.to_string(), experiments::run(id, &eval)))
        .collect();
    let cold_secs = t.elapsed().as_secs_f64();
    println!("suite_throughput: cold (no cache)      {cold_secs:>8.1}s");

    // Pass 2: one deduplicated work queue, populating the disk cache.
    cache.set_mode(CacheMode::Disk(dir.clone()));
    cache.reset_memory();
    let t = Instant::now();
    let dedup_reports = experiments::run_all(&ids, &eval, None);
    let dedup_secs = t.elapsed().as_secs_f64();
    println!("suite_throughput: deduped (run_all)    {dedup_secs:>8.1}s");
    eprintln!("[suite_throughput] {}", cache.summary());

    // Pass 3: warm from disk (memory cache dropped).
    cache.reset_memory();
    let t = Instant::now();
    let warm_reports = experiments::run_all(&ids, &eval, None);
    let warm_secs = t.elapsed().as_secs_f64();
    println!("suite_throughput: warm (disk cache)    {warm_secs:>8.1}s");
    eprintln!("[suite_throughput] {}", cache.summary());

    cache.set_mode(CacheMode::Memory);
    cache.reset_memory();
    let _ = std::fs::remove_dir_all(&dir);

    let identical = {
        let cold = render(&cold_reports);
        cold == render(&dedup_reports) && cold == render(&warm_reports)
    };
    let dedup_speedup = cold_secs / dedup_secs.max(1e-9);
    let warm_speedup = cold_secs / warm_secs.max(1e-9);
    println!(
        "suite_throughput: dedup speedup {dedup_speedup:.2}x, warm speedup {warm_speedup:.2}x, \
         reports {}",
        if identical {
            "byte-identical"
        } else {
            "DIFFER"
        }
    );

    let path = repo_root().join("BENCH_suite.json");
    let existing = std::fs::read_to_string(&path).ok();

    if std::env::var_os("CATCH_BLESS").is_some() {
        let current = format!(
            "{{\n    \"cold_secs\": {cold_secs:.1},\n    \"dedup_secs\": {dedup_secs:.1},\n    \
             \"warm_secs\": {warm_secs:.1}\n  }}"
        );
        // The frozen pre-PR measurement survives re-blessing; only the
        // very first bless (no file yet) seeds it from the cold pass.
        let pre_pr = existing
            .as_deref()
            .and_then(|j| extract_object(j, "pre_pr"))
            .unwrap_or_else(|| format!("{{\n    \"registry_secs\": {cold_secs:.1}\n  }}"));
        let pre_secs = extract_number(&pre_pr, "registry_secs").unwrap_or(cold_secs);
        let json = format!(
            "{{\n  \"bench\": \"suite_throughput\",\n  \"scale\": {{ \"ops\": {}, \"warmup\": {}, \
             \"seed\": {} }},\n  \"fidelity\": \"{}\",\n  \"pre_pr\": {},\n  \"reference\": {},\n  \
             \"speedup_dedup_vs_pre_pr\": {:.4},\n  \"speedup_warm_vs_pre_pr\": {:.4}\n}}\n",
            eval.ops,
            eval.warmup,
            eval.seed,
            eval.fidelity.label(),
            pre_pr,
            current,
            pre_secs / dedup_secs.max(1e-9),
            pre_secs / warm_secs.max(1e-9),
        );
        std::fs::write(&path, json).expect("write BENCH_suite.json");
        println!("suite_throughput: blessed {}", path.display());
        return;
    }

    if let Some(ref_warm) = existing
        .as_deref()
        .and_then(|j| extract_object(j, "reference"))
        .and_then(|obj| extract_number(&obj, "warm_secs"))
    {
        println!("suite_throughput: reference warm {ref_warm:.1}s, measured {warm_secs:.1}s");
    } else {
        println!(
            "suite_throughput: no checked-in reference at {} (run with CATCH_BLESS=1 to create)",
            path.display()
        );
    }

    if std::env::var_os("CATCH_BENCH_CHECK").is_some() {
        let min_speedup = std::env::var("CATCH_SUITE_MIN_SPEEDUP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_MIN_SPEEDUP);
        if !identical {
            eprintln!("suite_throughput FAILED: cache modes changed report bytes");
            std::process::exit(1);
        }
        if warm_speedup < min_speedup {
            eprintln!(
                "suite_throughput FAILED: warm pass only {warm_speedup:.2}x faster than cold \
                 (floor {min_speedup}x)"
            );
            std::process::exit(1);
        }
        println!("suite_throughput OK (byte-identical, warm ≥{min_speedup}x)");
    }
}
