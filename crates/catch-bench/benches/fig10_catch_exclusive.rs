//! Regenerates the paper's fig10 (see catch-core::experiments).

fn main() {
    catch_bench::run_experiment("fig10");
}
