//! Regenerates the paper's sec6d2 (see catch-core::experiments).

fn main() {
    catch_bench::run_experiment("sec6d2");
}
