//! Sampled-vs-full simulation: wall-clock speedup and reconstruction
//! error per golden workload.
//!
//! For each of the six golden workloads this target times a full
//! detailed run and a sampled run (`System::run_sampled`) under the
//! first-party bench harness — `CATCH_BENCH_JSON=1` emits both timings
//! as machine-readable JSON — then prints a table of the achieved
//! speedup and the per-counter reconstruction errors (IPC, L2 misses,
//! LLC misses) plus the plan's reported error bound.
//!
//! Scale knobs: `CATCH_OPS`, `CATCH_SEED` (shared with every bench
//! target) plus `CATCH_SAMPLE` (interval size in micro-ops; default
//! `ops / 20`), `CATCH_SAMPLE_CLUSTERS` (k-means cluster cap) and
//! `CATCH_SAMPLE_WARMUP` (detailed-warmup ops before each measured
//! interval).

use catch_core::experiments::GOLDEN_WORKLOADS;
use catch_core::report::{Table, ValueKind};
use catch_core::{SampleConfig, System, SystemConfig};
use catch_harness::Harness;
use catch_workloads::suite;

fn pct_err(sampled: f64, full: f64) -> f64 {
    if full == 0.0 {
        if sampled == 0.0 {
            0.0
        } else {
            100.0
        }
    } else {
        100.0 * (sampled - full).abs() / full
    }
}

fn main() {
    let eval = catch_bench::eval_from_env();
    let env_usize = |name: &str| std::env::var(name).ok().and_then(|v| v.parse().ok());
    let interval_ops = env_usize("CATCH_SAMPLE").unwrap_or_else(|| (eval.ops / 20).max(1));
    let mut sample = SampleConfig::new(interval_ops);
    if let Some(k) = env_usize("CATCH_SAMPLE_CLUSTERS") {
        sample = sample.with_max_clusters(k);
    }
    if let Some(w) = env_usize("CATCH_SAMPLE_WARMUP") {
        sample = sample.with_warmup_ops(w);
    }
    let system = System::new(SystemConfig::baseline_exclusive());

    eprintln!(
        "[catch-bench] sampling_accuracy at ops={} interval={} seed={}",
        eval.ops, interval_ops, eval.seed
    );

    let mut harness = Harness::new("sampling_accuracy");
    let mut table = Table::new(
        format!("sampled vs full, interval={interval_ops} ops"),
        vec![
            "speedup".into(),
            "IPC err%".into(),
            "L2 miss err%".into(),
            "LLC miss err%".into(),
            "bound%".into(),
        ],
        ValueKind::Raw,
    );

    for name in GOLDEN_WORKLOADS {
        let trace = suite::by_name(name)
            .expect("golden workload exists")
            .generate(eval.ops, eval.seed);

        let mut full = None;
        let full_time = harness
            .bench(&format!("{name}/full"), eval.ops as u64, || {
                full = Some(system.run_st(trace.clone()));
            })
            .median_ns;
        let mut sampled = None;
        let sampled_time = harness
            .bench(&format!("{name}/sampled"), eval.ops as u64, || {
                sampled = Some(system.run_sampled(trace.clone(), &sample));
            })
            .median_ns;

        let full = full.expect("timed at least once");
        let s = sampled.expect("timed at least once");
        let l2_full: u64 = full.hierarchy.l2.iter().map(|c| c.misses).sum();
        let l2_sampled: u64 = s.result.hierarchy.l2.iter().map(|c| c.misses).sum();
        table.push_row(
            name,
            vec![
                if sampled_time == 0 {
                    0.0
                } else {
                    full_time as f64 / sampled_time as f64
                },
                pct_err(s.result.ipc(), full.ipc()),
                pct_err(l2_sampled as f64, l2_full as f64),
                pct_err(
                    s.result.hierarchy.llc.misses as f64,
                    full.hierarchy.llc.misses as f64,
                ),
                s.sampling.ipc_error_bound_pct,
            ],
        );
    }

    println!("{table}");
    harness.report();
}
