//! Regenerates the paper's fig11 (see catch-core::experiments).

fn main() {
    catch_bench::run_experiment("fig11");
}
