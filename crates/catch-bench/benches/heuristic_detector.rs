//! Graph-based vs heuristic criticality detection (paper Section IV-A).

fn main() {
    catch_bench::run_experiment("heuristic");
}
