//! Simulator-throughput tracking benchmark: simulated Mcycles/s and
//! Mops/s over the six golden workloads, written to
//! `BENCH_throughput.json` at the repo root so the perf trajectory is
//! tracked in-tree.
//!
//! Each golden workload is simulated in full detail under the CATCH
//! configuration (the hottest configuration the experiment suite runs)
//! on the first-party [`catch_harness`] harness; throughput derives
//! from the median iteration. The headline number is the geometric
//! mean of simulated cycles per wall-clock second across the six
//! workloads.
//!
//! Modes (beyond the usual `CATCH_*` scale variables):
//!
//! * default — measure and print; if `BENCH_throughput.json` exists,
//!   also print the delta against its checked-in reference.
//! * `CATCH_BLESS=1` — rewrite `BENCH_throughput.json`: the measured
//!   numbers become the new `reference`; the `pre_pr` block (the
//!   before-this-optimisation-PR baseline) is preserved verbatim when
//!   present, else seeded from this run.
//! * `CATCH_BENCH_CHECK=1` — CI regression gate: exit non-zero when
//!   the measured geomean falls more than `CATCH_BENCH_GATE_PCT`
//!   (default 15) percent below the checked-in reference. A speedup
//!   beyond the same margin prints a re-bless reminder but passes —
//!   a faster runner must not fail CI.
//! * `CATCH_BENCH_MIN_SPEEDUP=F` — engine-speedup gate: exit non-zero
//!   unless measured geomean ÷ the `pre_pr` baseline geomean reaches
//!   `F` (e.g. `1.5` for the event-queue engine's acceptance floor).
//!   The comparison line prints regardless whenever a `pre_pr` block
//!   exists.
//!
//! The active cycle engine follows `CATCH_ENGINE` (default `timeq`),
//! so `CATCH_ENGINE=tick cargo bench ...` measures the reference tick
//! loop on the same scale for an apples-to-apples engine comparison.

use catch_bench::{eval_from_env, pin_ooo};
use catch_core::experiments::GOLDEN_WORKLOADS;
use catch_core::{Engine, System, SystemConfig};
use catch_harness::Harness;
use catch_workloads::suite;
use std::path::{Path, PathBuf};

/// Default regression-gate width, percent below reference.
const DEFAULT_GATE_PCT: f64 = 15.0;

/// One workload's measured simulation rate.
struct Rate {
    name: &'static str,
    mcycles_per_sec: f64,
    mops_per_sec: f64,
}

fn repo_root() -> PathBuf {
    // crates/catch-bench -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("repo root exists")
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = values.fold((0.0, 0u32), |(s, n), v| (s + v.max(1e-12).ln(), n + 1));
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

/// Renders one measurement block (`pre_pr` / `reference`) as JSON.
fn block_to_json(rates: &[Rate], indent: usize) -> String {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 2);
    let workloads: Vec<String> = rates
        .iter()
        .map(|r| {
            format!(
                "{inner}\"{}\": {{ \"mcycles_per_sec\": {:.4}, \"mops_per_sec\": {:.4} }}",
                r.name, r.mcycles_per_sec, r.mops_per_sec
            )
        })
        .collect();
    format!(
        "{{\n{pad}  \"workloads\": {{\n{}\n{pad}  }},\n\
         {pad}  \"geomean_mcycles_per_sec\": {:.4},\n\
         {pad}  \"geomean_mops_per_sec\": {:.4}\n{pad}}}",
        workloads.join(",\n"),
        geomean(rates.iter().map(|r| r.mcycles_per_sec)),
        geomean(rates.iter().map(|r| r.mops_per_sec)),
    )
}

/// Extracts the JSON object following `"key":` by brace counting.
/// The file is machine-written by this benchmark, so this stays simple.
fn extract_object(json: &str, key: &str) -> Option<String> {
    let at = json.find(&format!("\"{key}\""))?;
    let open = at + json[at..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts the number following `"key":` inside `json`.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{key}\""))?;
    let rest = &json[at..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn main() {
    let mut eval = eval_from_env();
    pin_ooo(&mut eval);
    let engine = Engine::from_env();
    eprintln!(
        "[sim_throughput] six golden workloads at ops={} seed={} (full-detail, CATCH config, \
         {} engine)",
        eval.ops,
        eval.seed,
        engine.name()
    );
    let system = System::new(SystemConfig::baseline_exclusive().with_catch());
    let mut harness = Harness::new("sim_throughput");
    let mut rates = Vec::new();
    for &name in GOLDEN_WORKLOADS.iter() {
        let trace = suite::by_name(name)
            .expect("golden workload exists")
            .generate(eval.ops, eval.seed);
        // Uncounted pre-run pins the simulated work for the throughput
        // denominators (the harness separately does its own warm-up).
        let pre = system.run_st(trace.clone());
        let (cycles, instructions) = (pre.core.cycles, pre.core.instructions);
        let result = harness
            .bench(name, cycles, || {
                std::hint::black_box(system.run_st(trace.clone()));
            })
            .clone();
        let secs = result.median_ns as f64 * 1e-9;
        rates.push(Rate {
            name,
            mcycles_per_sec: cycles as f64 / secs * 1e-6,
            mops_per_sec: instructions as f64 / secs * 1e-6,
        });
    }
    harness.report();
    let geo_cycles = geomean(rates.iter().map(|r| r.mcycles_per_sec));
    let geo_ops = geomean(rates.iter().map(|r| r.mops_per_sec));
    println!("sim_throughput: geomean {geo_cycles:.3} Mcycles/s, {geo_ops:.3} Mops/s");

    let path = repo_root().join("BENCH_throughput.json");
    let existing = std::fs::read_to_string(&path).ok();
    let reference_geo = existing
        .as_deref()
        .and_then(|j| extract_object(j, "reference"))
        .and_then(|obj| extract_number(&obj, "geomean_mcycles_per_sec"));

    if std::env::var_os("CATCH_BLESS").is_some() {
        let current = block_to_json(&rates, 1);
        // The pre-PR baseline survives re-blessing; only the very first
        // bless (no file yet) seeds it from the live measurement.
        let pre_pr = existing
            .as_deref()
            .and_then(|j| extract_object(j, "pre_pr"))
            .unwrap_or_else(|| current.clone());
        let pre_geo = extract_number(&pre_pr, "geomean_mcycles_per_sec").unwrap_or(geo_cycles);
        let speedup = if pre_geo > 0.0 {
            geo_cycles / pre_geo
        } else {
            1.0
        };
        let json = format!(
            "{{\n  \"bench\": \"sim_throughput\",\n  \"scale\": {{ \"ops\": {}, \"seed\": {}, \"iters\": {} }},\n  \"fidelity\": \"{}\",\n  \"pre_pr\": {},\n  \"reference\": {},\n  \"speedup_geomean\": {:.4}\n}}\n",
            eval.ops,
            eval.seed,
            rates.first().map(|_| harness.results()[0].iters).unwrap_or(0),
            eval.fidelity.label(),
            pre_pr,
            current,
            speedup,
        );
        std::fs::write(&path, json).expect("write BENCH_throughput.json");
        println!(
            "sim_throughput: blessed {} (speedup vs pre-PR baseline: {speedup:.2}x)",
            path.display()
        );
        return;
    }

    let Some(reference) = reference_geo else {
        println!(
            "sim_throughput: no checked-in reference at {} (run with CATCH_BLESS=1 to create)",
            path.display()
        );
        return;
    };
    let delta_pct = 100.0 * (geo_cycles - reference) / reference;
    println!(
        "sim_throughput: reference {reference:.3} Mcycles/s, measured {geo_cycles:.3} \
         ({delta_pct:+.1}%)"
    );
    // Engine comparison against the pre-optimisation-PR baseline: the
    // pre_pr block was blessed on the tick loop before the event-queue
    // engine landed, so this ratio is the engine PR's headline speedup.
    let pre_geo = existing
        .as_deref()
        .and_then(|j| extract_object(j, "pre_pr"))
        .and_then(|obj| extract_number(&obj, "geomean_mcycles_per_sec"));
    if let Some(pre) = pre_geo.filter(|&p| p > 0.0) {
        let speedup = geo_cycles / pre;
        println!(
            "sim_throughput: {} engine speedup vs pre-PR baseline {pre:.3} Mcycles/s: \
             {speedup:.2}x",
            engine.name()
        );
        if let Some(min) = std::env::var("CATCH_BENCH_MIN_SPEEDUP")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
        {
            if speedup < min {
                eprintln!(
                    "sim_throughput FAILED: speedup {speedup:.2}x under the {min}x floor \
                     (CATCH_BENCH_MIN_SPEEDUP)"
                );
                std::process::exit(1);
            }
            println!("sim_throughput: speedup gate OK (≥{min}x)");
        }
    }
    if std::env::var_os("CATCH_BENCH_CHECK").is_some() {
        let gate_pct = std::env::var("CATCH_BENCH_GATE_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_GATE_PCT);
        if delta_pct < -gate_pct {
            eprintln!(
                "sim_throughput FAILED: {:.1}% below the checked-in reference \
                 (gate {gate_pct}%) — a real regression or a slower runner; \
                 investigate before re-blessing",
                -delta_pct
            );
            std::process::exit(1);
        }
        if delta_pct > gate_pct {
            println!(
                "sim_throughput: {delta_pct:+.1}% above reference — consider re-blessing \
                 BENCH_throughput.json with CATCH_BLESS=1"
            );
        }
        println!("sim_throughput OK (within {gate_pct}% of reference)");
    }
}
