//! Regenerates the paper's fig12 (see catch-core::experiments).

fn main() {
    catch_bench::run_experiment("fig12");
}
