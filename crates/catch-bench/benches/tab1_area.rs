//! Regenerates the paper's tab1 (see catch-core::experiments).

fn main() {
    catch_bench::run_experiment("tab1");
}
