//! Regenerates the paper's fig16 (see catch-core::experiments).

fn main() {
    catch_bench::run_experiment("fig16");
}
