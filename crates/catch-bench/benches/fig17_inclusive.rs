//! Regenerates the paper's fig17 (see catch-core::experiments).

fn main() {
    catch_bench::run_experiment("fig17");
}
