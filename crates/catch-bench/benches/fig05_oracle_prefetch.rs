//! Regenerates the paper's fig5 (see catch-core::experiments).

fn main() {
    catch_bench::run_experiment("fig5");
}
