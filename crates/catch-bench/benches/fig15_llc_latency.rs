//! Regenerates the paper's fig15 (see catch-core::experiments).

fn main() {
    catch_bench::run_experiment("fig15");
}
