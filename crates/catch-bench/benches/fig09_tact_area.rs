//! Regenerates the paper's Figure 9 (TACT structure area).

fn main() {
    catch_bench::run_experiment("fig9");
}
