//! Regenerates the paper's fig3 (see catch-core::experiments).

fn main() {
    catch_bench::run_experiment("fig3");
}
