//! Regenerates the paper's fig13 (see catch-core::experiments).

fn main() {
    catch_bench::run_experiment("fig13");
}
