//! Regenerates the paper's fig1 (see catch-core::experiments).

fn main() {
    catch_bench::run_experiment("fig1");
}
