//! Criterion microbenchmarks of the simulator's hot paths: cache array
//! lookups, hierarchy walks, DDG insertion and whole-core simulation
//! throughput.

use catch_cache::{
    AccessKind, CacheArray, CacheConfig, CacheHierarchy, FixedLatencyBackend, HierarchyConfig,
};
use catch_cpu::{Core, CoreConfig};
use catch_criticality::{CriticalityDetector, DetectorConfig, RetiredInst};
use catch_trace::{LineAddr, Pc};
use catch_workloads::suite;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_cache_array(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_array");
    group.throughput(Throughput::Elements(1));
    let config = CacheConfig::new("L2", 1 << 20, 16, 15).expect("valid");
    let mut cache = CacheArray::new(&config);
    let mut i = 0u64;
    group.bench_function("lookup_fill_mix", |b| {
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(13);
            let line = LineAddr::new(i % 32768);
            if !cache.lookup(line) {
                cache.fill(line, false, false);
            }
        })
    });
    group.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy");
    group.throughput(Throughput::Elements(1));
    let mut hier = CacheHierarchy::new(
        &HierarchyConfig::skylake_server(1),
        Box::new(FixedLatencyBackend::new(200)),
    );
    let mut i = 0u64;
    let mut cycle = 0u64;
    group.bench_function("demand_load", |b| {
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(13);
            cycle += 4;
            hier.access(0, AccessKind::Load, LineAddr::new(i % 65536), cycle)
        })
    });
    group.finish();
}

fn bench_ddg(c: &mut Criterion) {
    let mut group = c.benchmark_group("criticality");
    group.throughput(Throughput::Elements(1));
    let mut det = CriticalityDetector::new(DetectorConfig::paper());
    let mut i = 0u64;
    group.bench_function("retire_and_walk", |b| {
        b.iter(|| {
            i += 1;
            let seq = det.next_seq();
            det.on_retire(RetiredInst::compute(
                Pc::new(0x1000 + (i % 64) * 4),
                (i % 17) + 1,
                &[seq.saturating_sub(1 + i % 3)],
            ));
        })
    });
    group.finish();
}

fn bench_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("core");
    let trace = suite::by_name("xalanc_like")
        .expect("known workload")
        .generate(20_000, 42);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);
    group.bench_function("xalanc_20k_baseline", |b| {
        b.iter(|| {
            let mut hier = CacheHierarchy::new(
                &HierarchyConfig::skylake_server(1),
                Box::new(FixedLatencyBackend::new(200)),
            );
            let mut core = Core::new(0, trace.clone(), CoreConfig::baseline());
            core.run_to_completion(&mut hier)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache_array,
    bench_hierarchy,
    bench_ddg,
    bench_core
);
criterion_main!(benches);
