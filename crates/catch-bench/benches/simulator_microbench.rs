//! Microbenchmarks of the simulator's hot paths: cache array lookups,
//! hierarchy walks, DDG insertion and whole-core simulation throughput.
//!
//! Runs on the first-party [`catch_harness`] bench harness; each hot
//! path is timed as a batch of `OPS` inner operations per iteration so
//! the Mops/s column reports per-operation throughput.

use catch_cache::{
    AccessKind, CacheArray, CacheConfig, CacheHierarchy, FixedLatencyBackend, HierarchyConfig,
};
use catch_cpu::{Core, CoreConfig};
use catch_criticality::{CriticalityDetector, DetectorConfig, RetiredInst};
use catch_harness::Harness;
use catch_trace::{LineAddr, Pc};
use catch_workloads::suite;

/// Inner operations per timed iteration for the per-structure paths.
const OPS: u64 = 100_000;

fn main() {
    let mut harness = Harness::new("simulator_microbench");

    let config = CacheConfig::new("L2", 1 << 20, 16, 15).expect("valid");
    let mut cache = CacheArray::new(&config);
    let mut i = 0u64;
    harness.bench("cache_array/lookup_fill_mix", OPS, || {
        for _ in 0..OPS {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(13);
            let line = LineAddr::new(i % 32768);
            if !cache.lookup(line) {
                cache.fill(line, false, false);
            }
        }
    });

    let mut hier = CacheHierarchy::new(
        &HierarchyConfig::skylake_server(1),
        Box::new(FixedLatencyBackend::new(200)),
    );
    let mut j = 0u64;
    let mut cycle = 0u64;
    harness.bench("hierarchy/demand_load", OPS, || {
        for _ in 0..OPS {
            j = j.wrapping_mul(6364136223846793005).wrapping_add(13);
            cycle += 4;
            hier.access(0, AccessKind::Load, LineAddr::new(j % 65536), cycle);
        }
    });

    let mut det = CriticalityDetector::new(DetectorConfig::paper());
    let mut k = 0u64;
    harness.bench("criticality/retire_and_walk", OPS, || {
        for _ in 0..OPS {
            k += 1;
            let seq = det.next_seq();
            det.on_retire(RetiredInst::compute(
                Pc::new(0x1000 + (k % 64) * 4),
                (k % 17) + 1,
                &[seq.saturating_sub(1 + k % 3)],
            ));
        }
    });

    let trace = suite::by_name("xalanc_like")
        .expect("known workload")
        .generate(20_000, 42);
    harness.bench("core/run_to_completion", trace.len() as u64, || {
        let mut hier = CacheHierarchy::new(
            &HierarchyConfig::skylake_server(1),
            Box::new(FixedLatencyBackend::new(200)),
        );
        let mut core = Core::new(0, trace.clone(), CoreConfig::baseline());
        core.run_to_completion(&mut hier);
    });

    harness.report();
}
