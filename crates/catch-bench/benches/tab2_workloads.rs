//! Regenerates the paper's tab2 (see catch-core::experiments).

fn main() {
    catch_bench::run_experiment("tab2");
}
