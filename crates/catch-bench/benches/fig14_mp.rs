//! Regenerates the paper's fig14 (see catch-core::experiments).

fn main() {
    catch_bench::run_experiment("fig14");
}
