//! Regenerates the paper's fig4 (see catch-core::experiments).

fn main() {
    catch_bench::run_experiment("fig4");
}
