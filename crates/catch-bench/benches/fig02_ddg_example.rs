//! Regenerates the paper's worked DDG example (Figures 2 and 6).

fn main() {
    catch_bench::run_experiment("fig2");
}
