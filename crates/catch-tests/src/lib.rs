//! Workspace-level test suites for the CATCH simulator.
//!
//! This crate carries no library code of its own: it exists so the
//! integration, end-to-end, property and golden-stats regression suites
//! under `tests/` build against the *public* API of the workspace crates,
//! exactly as an external user would drive them.
//!
//! Suites:
//!
//! * `integration` — cross-crate smoke tests of the `catch-core` facade.
//! * `end_to_end_catch` — full CATCH-vs-baseline experiment runs.
//! * `oracle_semantics` — criticality-oracle semantics against the
//!   detector.
//! * `properties` — randomized invariants on the deterministic in-repo
//!   case driver.
//! * `golden_stats` — byte-exact per-counter regression snapshot of a
//!   six-workload suite slice.
//! * `harness_parity` — the parallel suite runner must reproduce the
//!   serial runner's counters bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
