//! Fidelity-ladder guarantees (DESIGN.md §14):
//!
//! * the `timing-lite` rung tracks the OOO reference within its
//!   published error budgets on all six golden workloads at the
//!   standard evaluation scale (the acceptance criterion the
//!   `ladder-smoke` CI gate enforces);
//! * the `fast` rung's counters are bit-identical to the existing
//!   functional fast-forward path — it *is* that path, not a model of
//!   it;
//! * a ladder-mode sweep's Pareto frontier is OOO-revalidated: the
//!   frontier table renders byte-identical to an all-OOO sweep of the
//!   same grid, because every frontier candidate is re-run at the
//!   reference fidelity before it may appear;
//! * a checkpoint journal written under one fidelity plan refuses to
//!   resume under another, by name, instead of silently mixing rungs.
//!
//! Sweep tests share the process-global [`RunCache`] with
//! `tests/sweep.rs` conventions: a file-level mutex serializes them.

use catch_cache::{CacheHierarchy, FixedLatencyBackend, HierarchyConfig};
use catch_core::experiments::{
    ladder_errors, EvalConfig, Fidelity, GOLDEN_WORKLOADS, LITE_IPC_ERR_BUDGET_PCT,
    LITE_MPKI_ERR_BUDGET_PCT,
};
use catch_core::sweep::{run_sweep, SweepOptions, SweepSpec};
use catch_cpu::{run_fast_functional, Core, CoreConfig};
use catch_workloads::suite;
use std::path::PathBuf;
use std::sync::Mutex;

static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("catch-ladder-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(tag)
}

/// The lite rung's IPC and MPKI errors stay within the CI budgets on
/// every golden workload at the standard scale — the scale every
/// experiment and the `ladder-smoke` gate run at.
#[test]
fn lite_rung_is_within_error_budgets_on_the_golden_six() {
    let _guard = CACHE_LOCK.lock().unwrap();
    let errs = ladder_errors(&EvalConfig::standard());
    assert_eq!(errs.lite.len(), GOLDEN_WORKLOADS.len());
    for rung in &errs.lite {
        assert!(
            rung.ipc_pct <= LITE_IPC_ERR_BUDGET_PCT,
            "{}: lite IPC error {:.2}% over the {LITE_IPC_ERR_BUDGET_PCT}% budget",
            rung.workload,
            rung.ipc_pct
        );
        assert!(
            rung.l2_mpki_pct <= LITE_MPKI_ERR_BUDGET_PCT
                && rung.llc_mpki_pct <= LITE_MPKI_ERR_BUDGET_PCT,
            "{}: lite MPKI error (L2 {:.2}%, LLC {:.2}%) over the \
             {LITE_MPKI_ERR_BUDGET_PCT}% budget",
            rung.workload,
            rung.l2_mpki_pct,
            rung.llc_mpki_pct
        );
    }
    let violations = errs.violations();
    assert!(violations.is_empty(), "gate violations: {violations:?}");
}

/// The fast rung is the existing functional fast-forward path, verified
/// bitwise on a real golden workload: driving [`Core::fast_forward`] by
/// hand over the same trace and hierarchy produces identical core
/// counters.
#[test]
fn fast_rung_counters_are_bit_identical_to_fast_forward() {
    let trace = || {
        suite::by_name("xalanc_like")
            .expect("golden workload exists")
            .generate(6_000, 42)
    };
    let hier = || {
        CacheHierarchy::new(
            &HierarchyConfig::skylake_server(1),
            Box::new(FixedLatencyBackend::new(200)),
        )
    };
    let config = CoreConfig::baseline();
    let via_rung = run_fast_functional(0, trace(), config.clone(), &mut hier(), 1_500);
    let manual = {
        let mut h = hier();
        let mut core = Core::new(0, trace(), config);
        core.fast_forward(&mut h, 1_500);
        core.end_warmup();
        h.reset_stats();
        core.fast_forward(&mut h, usize::MAX);
        core.stats()
    };
    assert_eq!(via_rung, manual, "fast rung is the fast-forward path");
}

/// Ladder-mode sweeps OOO-revalidate the frontier: on the same grid,
/// the lite-rung sweep's Pareto frontier table is byte-identical to the
/// all-OOO sweep's, and the report says how many points were validated.
#[test]
fn ladder_sweep_frontier_is_byte_identical_to_all_ooo() {
    let _guard = CACHE_LOCK.lock().unwrap();
    let spec = SweepSpec::quick();
    let eval = EvalConfig {
        ops: 2_000,
        warmup: 500,
        seed: 42,
        sample: None,
        fidelity: Fidelity::Ooo,
    };
    let opts = SweepOptions::default;
    let reference = run_sweep(&spec, &eval, &opts()).expect("all-OOO sweep");
    assert_eq!(reference.validated, 0, "plain sweeps validate nothing");

    let ladder =
        run_sweep(&spec, &eval.with_fidelity(Fidelity::Lite), &opts()).expect("ladder sweep");
    assert!(
        ladder.validated > 0 && ladder.validated <= ladder.total,
        "ladder sweeps validate spot checks and frontier candidates \
         (got {} of {})",
        ladder.validated,
        ladder.total
    );

    let frontier_of = |report: &str| {
        report
            .split("All completed points")
            .next()
            .expect("frontier table precedes the full table")
            .to_string()
    };
    assert_eq!(
        frontier_of(&ladder.report.to_string()),
        frontier_of(&reference.report.to_string()),
        "OOO-revalidated frontier renders byte-identical to the all-OOO sweep"
    );
    let note = ladder
        .report
        .notes
        .iter()
        .find(|n| n.contains("fidelity ladder"))
        .expect("ladder reports carry the validation note");
    assert!(note.contains("'lite' rung"), "note names the rung: {note}");
}

/// A checkpoint journal records its fidelity plan and refuses to resume
/// under a different one, with a diagnostic that names both plans.
#[test]
fn journal_written_under_one_fidelity_plan_rejects_another() {
    let _guard = CACHE_LOCK.lock().unwrap();
    let spec = SweepSpec::quick();
    let eval = EvalConfig {
        ops: 2_000,
        warmup: 500,
        seed: 42,
        sample: None,
        fidelity: Fidelity::Lite,
    };
    let journal = scratch("fidelity-plan.journal");
    let _ = std::fs::remove_file(&journal);
    let opts = |limit| SweepOptions {
        jobs: None,
        checkpoint: Some(journal.clone()),
        limit,
        spot_stride: None,
    };
    run_sweep(&spec, &eval, &opts(Some(3))).expect("partial lite sweep");

    let err = run_sweep(&spec, &eval.with_fidelity(Fidelity::Ooo), &opts(None))
        .expect_err("a foreign fidelity plan must be rejected");
    assert!(
        err.contains("fidelity plan 'lite'") && err.contains("runs 'ooo'"),
        "diagnostic names both plans: {err}"
    );

    // The same plan still resumes cleanly.
    let resumed = run_sweep(&spec, &eval, &opts(None)).expect("same-plan resume");
    assert_eq!(resumed.resumed, 3, "journaled points restored");
    assert_eq!(resumed.remaining, 0);
}
