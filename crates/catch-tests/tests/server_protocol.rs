//! Protocol-level behaviour of the `catch-server` daemon over a real
//! unix socket: malformed frames, oversized frames, mid-frame
//! disconnects, drain rejections, and cross-client single-flight.
//!
//! Every test binds its own socket under the temp dir and drains its
//! daemon before exiting. Exactly one test here runs simulations
//! (`concurrent_identical_requests_simulate_exactly_once`) — the others
//! stay on control frames, because integration tests share one process
//! and therefore one global [`RunCache`].

use catch_core::experiments::{self, EvalConfig, Fidelity};
use catch_core::RunCache;
use catch_server::{
    Client, ClientError, Priority, Response, Server, ServerConfig, ServerHandle, MAX_FRAME_BYTES,
};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("catch-proto-{tag}-{}.sock", std::process::id()))
}

fn bind(tag: &str) -> (PathBuf, ServerHandle) {
    let path = sock_path(tag);
    let handle = Server::bind(
        &path,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind daemon socket");
    (path, handle)
}

fn tiny() -> EvalConfig {
    EvalConfig {
        ops: 2_000,
        warmup: 500,
        seed: 42,
        sample: None,
        fidelity: Fidelity::Ooo,
    }
}

fn drain(handle: ServerHandle) {
    handle.begin_drain();
    handle.wait().expect("clean drain");
}

#[test]
fn malformed_frames_get_errors_and_the_connection_stays_usable() {
    let (path, handle) = bind("malformed");
    let mut client = Client::connect(&path).expect("connect");
    for bad in [
        "this is not json\n",
        "{}\n",
        "{\"type\":\"run\",\"seq\":5}\n",
        "{\"type\":\"nope\",\"seq\":1}\n",
    ] {
        match client.send_raw(bad).expect("error frame arrives") {
            Response::Error { retryable, .. } => {
                assert!(!retryable, "protocol violations are not retryable")
            }
            other => panic!("expected an error for {bad:?}, got {other:?}"),
        }
    }
    // The frame boundary was never lost: the connection still serves.
    client.ping().expect("connection survives malformed frames");
    drain(handle);
}

#[test]
fn oversized_frames_are_rejected_and_the_connection_closed() {
    let (path, handle) = bind("oversized");
    let mut stream = UnixStream::connect(&path).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    // One giant frame, streamed in chunks so the cap is hit mid-read.
    let chunk = vec![b'x'; 4096];
    for _ in 0..(2 * MAX_FRAME_BYTES / chunk.len()) {
        if stream.write_all(&chunk).is_err() {
            break; // server already closed on us — that's the point
        }
    }
    let _ = stream.write_all(b"\n");
    let mut reply = String::new();
    stream
        .read_to_string(&mut reply)
        .expect("read until server closes");
    let line = reply.lines().next().expect("one error frame before close");
    match Response::decode(line).expect("decodes") {
        Response::Error {
            retryable, message, ..
        } => {
            assert!(!retryable);
            assert!(message.contains("exceeds"), "names the cap: {message}");
        }
        other => panic!("expected an error, got {other:?}"),
    }
    // read_to_string returning means the server closed the connection.
    drain(handle);
}

#[test]
fn mid_frame_disconnects_leave_the_daemon_healthy() {
    let (path, handle) = bind("truncated");
    for _ in 0..3 {
        let mut stream = UnixStream::connect(&path).expect("connect");
        stream
            .write_all(b"{\"type\":\"pi") // no newline, then vanish
            .expect("partial write");
        drop(stream);
    }
    let mut client = Client::connect(&path).expect("fresh connection");
    client.ping().expect("daemon survives truncated peers");
    drain(handle);
}

#[test]
fn unknown_experiment_ids_are_permanent_errors() {
    let (path, handle) = bind("unknown-id");
    let mut client = Client::connect(&path).expect("connect");
    match client.run("fig99", &tiny()) {
        Err(ClientError::Server { retryable, message }) => {
            assert!(!retryable, "a typo'd id never succeeds on retry");
            assert!(message.contains("fig99"), "names the id: {message}");
        }
        other => panic!("expected a server error, got {other:?}"),
    }
    client.ping().expect("connection stays usable");
    drain(handle);
}

#[test]
fn runs_after_shutdown_are_rejected_retryably() {
    let (path, handle) = bind("draining");
    let mut client = Client::connect(&path).expect("connect");
    client.shutdown().expect("shutdown acknowledged");
    match client.run("fig1", &tiny()) {
        Err(ClientError::Server { retryable, .. }) => {
            assert!(retryable, "drain rejections invite a retry")
        }
        other => panic!("expected a retryable rejection, got {other:?}"),
    }
    handle.wait().expect("clean exit after protocol shutdown");
    assert!(!path.exists(), "socket unlinked on exit");
}

/// The single-flight guarantee across the socket boundary: two clients
/// submitting the identical request concurrently cause exactly one
/// simulation's worth of work.
///
/// Determinism without relying on scheduler-level coalescing (which
/// depends on arrival timing): measure the global cache's miss delta for
/// the concurrent pair, then re-measure a solo local run of the same
/// experiment from a cleared memory cache. The two deltas must be equal
/// — the pair cost exactly one run — whichever layer (job coalescing or
/// run-cache single-flight) absorbed the duplicate.
#[test]
fn concurrent_identical_requests_simulate_exactly_once() {
    let (path, handle) = bind("single-flight");
    let eval = tiny();
    let cache = RunCache::global();
    cache.reset_memory();
    let m0 = cache.summary().misses;

    let (first, second) = std::thread::scope(|scope| {
        let (path, eval) = (&path, &eval);
        let run = |name: &'static str, priority| {
            scope.spawn(move || {
                Client::connect(path)
                    .expect("connect")
                    .with_identity(name, priority)
                    .run("fig1", eval)
                    .expect("run succeeds")
            })
        };
        let a = run("alice", Priority::Interactive);
        let b = run("bob", Priority::Sweep);
        (a.join().expect("alice"), b.join().expect("bob"))
    });
    assert_eq!(first, second, "both clients get identical report bytes");

    let m1 = cache.summary().misses;
    let concurrent_cost = m1 - m0;
    assert!(concurrent_cost > 0, "the cold pair simulated something");

    // Solo baseline: the same experiment from a cleared memory cache.
    cache.reset_memory();
    let local = experiments::run("fig1", &eval).to_string();
    let solo_cost = cache.summary().misses - m1;
    assert_eq!(
        concurrent_cost, solo_cost,
        "two concurrent identical requests must cost exactly one run"
    );
    assert_eq!(local, first, "served bytes match a local run");

    let mut client = Client::connect(&path).expect("connect");
    client.shutdown().expect("shutdown");
    drop(client);
    handle.wait().expect("clean drain");
    cache.reset_memory();
}
