//! Cycle-engine parity: the `timeq` event-queue engine must be
//! *bit-identical* to the reference tick loop — every counter, every
//! occupancy histogram bucket, and every emitted observability event,
//! on every golden workload, in every run mode (ST, CATCH, MP,
//! sampled, observed).
//!
//! The tick engine finds each idle-skip target by rescanning the
//! scheduler window ([`Core::next_event_cycle`]); the timeq engine
//! peeks a calendar queue into which every wake source posted a
//! `ServiceRequest` when the event was armed. Both targets are lower
//! bounds on the next progress cycle, so any divergence in these
//! suites means a reservation was posted on the wrong side of an
//! event — exactly the bug class an event-driven engine breeds.
//!
//! `CoreConfig::engine` (env: `CATCH_ENGINE=tick|timeq`) exists so
//! both engines stay runnable forever.
//!
//! [`Core::next_event_cycle`]: catch_cpu::Core::next_event_cycle

use catch_core::report::json::run_results_to_json;
use catch_core::{Engine, EventClass, Obs, SampleConfig, System, SystemConfig, VecSink};
use catch_workloads::suite;
use std::sync::{Arc, Mutex};

/// Same slice, scale and seed as the golden-stats snapshot.
const SLICE: [&str; 6] = [
    "xalanc_like",
    "astar_like",
    "bio_like",
    "sysmark_like",
    "tpcc_like",
    "excel_like",
];
const OPS: usize = 25_000;
const WARMUP: usize = 8_000;
const SEED: u64 = 42;

fn with_engine(mut config: SystemConfig, engine: Engine) -> System {
    // Pin skip-ahead on regardless of CATCH_NO_SKIP: with it off the
    // engine never consults a skip target and the comparison is vacuous.
    config.core.skip_ahead = true;
    config.core.engine = engine;
    System::new(config)
}

#[test]
fn st_counters_bit_identical_on_every_golden_workload() {
    let tick = with_engine(SystemConfig::baseline_exclusive(), Engine::Tick);
    let timeq = with_engine(SystemConfig::baseline_exclusive(), Engine::TimeQ);
    for name in SLICE {
        let trace = suite::by_name(name)
            .expect("known workload")
            .generate(OPS, SEED);
        let a = tick.run_st_warm(trace.clone(), WARMUP);
        let b = timeq.run_st_warm(trace, WARMUP);
        assert_eq!(
            run_results_to_json(&[a]),
            run_results_to_json(&[b]),
            "timeq diverged from the tick engine on {name}"
        );
    }
}

#[test]
fn catch_config_counters_bit_identical() {
    // The full CATCH machine adds the TACT prefetchers (whose wake
    // hints are non-gating and must stay out of the queue) and the
    // criticality detector on top of the baseline pipeline.
    let tick = with_engine(
        SystemConfig::baseline_exclusive().with_catch(),
        Engine::Tick,
    );
    let timeq = with_engine(
        SystemConfig::baseline_exclusive().with_catch(),
        Engine::TimeQ,
    );
    for name in ["tpcc_like", "xalanc_like"] {
        let trace = suite::by_name(name)
            .expect("known workload")
            .generate(OPS, SEED);
        let a = tick.run_st_warm(trace.clone(), WARMUP);
        let b = timeq.run_st_warm(trace, WARMUP);
        assert_eq!(
            run_results_to_json(&[a]),
            run_results_to_json(&[b]),
            "timeq diverged under CATCH on {name}"
        );
    }
}

#[test]
fn event_streams_bit_identical() {
    // Every observability event — cycle stamps included — must match.
    // This is the strongest form of the parity claim: a queue target
    // one cycle late moves an occupancy sample or stall increment even
    // when the final counters happen to agree.
    let collect = |engine: Engine| {
        let system = with_engine(SystemConfig::baseline_exclusive().with_catch(), engine);
        let trace = suite::by_name("tpcc_like")
            .expect("known workload")
            .generate(6_000, SEED);
        let sink = Arc::new(Mutex::new(VecSink::new()));
        let obs = Obs::attached(sink.clone(), EventClass::ALL);
        let _ = system.run_st_obs(trace, &obs);
        drop(obs);
        let events = sink.lock().expect("sink lock").take();
        events
    };
    let tick = collect(Engine::Tick);
    let timeq = collect(Engine::TimeQ);
    assert_eq!(tick.len(), timeq.len(), "event counts diverged");
    for (i, (a, b)) in tick.iter().zip(timeq.iter()).enumerate() {
        assert_eq!(a, b, "event {i} diverged");
    }
}

#[test]
fn mp_counters_bit_identical() {
    // The lockstep driver takes the minimum wake target across live
    // cores; hints drain into whichever core ticked last, so this also
    // exercises cross-core hint misdelivery (harmless by construction).
    let mix = catch_workloads::mp::rate4_mixes()
        .into_iter()
        .find(|m| m.name == "rate4_xalanc_like")
        .expect("rate4 mix exists");
    let tick = with_engine(
        SystemConfig::baseline_exclusive().with_cores(4),
        Engine::Tick,
    );
    let timeq = with_engine(
        SystemConfig::baseline_exclusive().with_cores(4),
        Engine::TimeQ,
    );
    let a = tick.run_mp(mix.generate(6_000, SEED));
    let b = timeq.run_mp(mix.generate(6_000, SEED));
    assert_eq!(
        run_results_to_json(&a.per_core),
        run_results_to_json(&b.per_core),
        "timeq diverged on the MP lockstep loop"
    );
}

#[test]
fn sampled_runs_bit_identical() {
    // Sampled mode exercises drain (fetchless skip targets) and
    // fast-forward (which must discard stale reservations).
    let sample = SampleConfig::new(5_000).with_max_clusters(10);
    let trace = suite::by_name("astar_like")
        .expect("known workload")
        .generate(OPS, SEED);
    let tick = with_engine(SystemConfig::baseline_exclusive(), Engine::Tick)
        .run_sampled(trace.clone(), &sample);
    let timeq =
        with_engine(SystemConfig::baseline_exclusive(), Engine::TimeQ).run_sampled(trace, &sample);
    assert_eq!(
        run_results_to_json(&[tick.result]),
        run_results_to_json(&[timeq.result]),
        "timeq diverged in sampled mode"
    );
}

#[test]
fn engine_env_parses_both_names() {
    assert_eq!(Engine::parse("tick"), Ok(Engine::Tick));
    assert_eq!(Engine::parse("timeq"), Ok(Engine::TimeQ));
    assert!(Engine::parse("calendar").is_err());
}
