//! Golden-stats regression test: a fixed six-workload slice of the
//! suite, simulated at a pinned scale and seed, must reproduce the
//! committed per-counter JSON snapshot *byte for byte*.
//!
//! Every counter of every stats block flows through [`Counters`] into
//! the snapshot, so any behavioural change to the core, hierarchy,
//! criticality or prefetch models — intended or not — shows up as a
//! diff here. To re-bless after an intended change:
//!
//! ```sh
//! CATCH_BLESS=1 cargo test -p catch-tests --test golden_stats
//! git diff crates/catch-tests/tests/golden/suite_slice.json
//! ```

use catch_core::report::json::run_results_to_json;
use catch_core::{RunResult, System, SystemConfig};
use catch_workloads::suite;

/// Pinned scale: large enough to exercise steady-state behaviour of
/// every model, small enough to keep the test quick.
const OPS: usize = 25_000;
const WARMUP: usize = 8_000;
const SEED: u64 = 42;

/// Behaviour-diverse slice: one workload per paper category plus the
/// two headline SPEC-like traces (same slice as the end-to-end tests).
const SLICE: [&str; 6] = [
    "xalanc_like",
    "astar_like",
    "bio_like",
    "sysmark_like",
    "tpcc_like",
    "excel_like",
];

const GOLDEN_PATH: &str = "tests/golden/suite_slice.json";
const GOLDEN: &str = include_str!("golden/suite_slice.json");

/// MP snapshot: one RATE-4 mix (four copies of xalanc_like sharing the
/// LLC) at a reduced per-core scale. Guards the multi-programmed path —
/// round-robin core interleaving, shared-LLC contention and the per-copy
/// address rebasing — which the ST snapshot cannot see.
const MP_OPS: usize = 6_000;
const MP_GOLDEN_PATH: &str = "tests/golden/mp_rate4.json";
const MP_GOLDEN: &str = include_str!("golden/mp_rate4.json");

fn slice_runs() -> Vec<RunResult> {
    let system = System::new(SystemConfig::baseline_exclusive());
    SLICE
        .iter()
        .map(|n| {
            let trace = suite::by_name(n)
                .expect("known workload")
                .generate(OPS, SEED);
            system.run_st_warm(trace, WARMUP)
        })
        .collect()
}

/// Blesses (under `CATCH_BLESS=1`) or byte-compares one snapshot,
/// reporting the first diverging line on mismatch.
fn check_golden(actual: &str, golden: &str, path: &str) {
    if std::env::var_os("CATCH_BLESS").is_some() {
        std::fs::write(path, actual).expect("write golden snapshot");
        eprintln!("blessed {path} ({} bytes)", actual.len());
        return;
    }
    if actual != golden {
        // Locate the first diverging line for a readable failure.
        let mismatch = actual
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, g))| a != g);
        if let Some((i, (a, g))) = mismatch {
            panic!(
                "golden-stats mismatch in {path} at line {}:\n  actual: {a}\n  golden: {g}\n\
                 re-bless with CATCH_BLESS=1 if the change is intended",
                i + 1
            );
        }
        panic!(
            "golden-stats mismatch in {path}: lengths differ (actual {} bytes, golden {} bytes); \
             re-bless with CATCH_BLESS=1 if the change is intended",
            actual.len(),
            golden.len()
        );
    }
}

#[test]
fn suite_slice_matches_golden_snapshot() {
    let actual = run_results_to_json(&slice_runs());
    check_golden(&actual, GOLDEN, GOLDEN_PATH);
}

#[test]
fn mp_rate4_matches_golden_snapshot() {
    let mix = catch_workloads::mp::rate4_mixes()
        .into_iter()
        .find(|m| m.name == "rate4_xalanc_like")
        .expect("rate4 mix exists for every suite workload");
    let system = System::new(SystemConfig::baseline_exclusive().with_cores(4));
    let mp = system.run_mp(mix.generate(MP_OPS, SEED));
    let actual = run_results_to_json(&mp.per_core);
    check_golden(&actual, MP_GOLDEN, MP_GOLDEN_PATH);
}

#[test]
fn golden_snapshot_covers_every_slice_workload() {
    // Guards against a stale snapshot silently shrinking coverage.
    for name in SLICE {
        assert!(
            GOLDEN.contains(&format!("\"workload\": \"{name}\"")),
            "snapshot is missing workload {name}"
        );
    }
}
