//! Golden-stats regression test: a fixed six-workload slice of the
//! suite, simulated at a pinned scale and seed, must reproduce the
//! committed per-counter JSON snapshot *byte for byte*.
//!
//! Every counter of every stats block flows through [`Counters`] into
//! the snapshot, so any behavioural change to the core, hierarchy,
//! criticality or prefetch models — intended or not — shows up as a
//! diff here. To re-bless after an intended change:
//!
//! ```sh
//! CATCH_BLESS=1 cargo test -p catch-tests --test golden_stats
//! git diff crates/catch-tests/tests/golden/suite_slice.json
//! ```

use catch_core::report::json::run_results_to_json;
use catch_core::{RunResult, System, SystemConfig};
use catch_workloads::suite;

/// Pinned scale: large enough to exercise steady-state behaviour of
/// every model, small enough to keep the test quick.
const OPS: usize = 25_000;
const WARMUP: usize = 8_000;
const SEED: u64 = 42;

/// Behaviour-diverse slice: one workload per paper category plus the
/// two headline SPEC-like traces (same slice as the end-to-end tests).
const SLICE: [&str; 6] = [
    "xalanc_like",
    "astar_like",
    "bio_like",
    "sysmark_like",
    "tpcc_like",
    "excel_like",
];

const GOLDEN_PATH: &str = "tests/golden/suite_slice.json";
const GOLDEN: &str = include_str!("golden/suite_slice.json");

fn slice_runs() -> Vec<RunResult> {
    let system = System::new(SystemConfig::baseline_exclusive());
    SLICE
        .iter()
        .map(|n| {
            let trace = suite::by_name(n)
                .expect("known workload")
                .generate(OPS, SEED);
            system.run_st_warm(trace, WARMUP)
        })
        .collect()
}

#[test]
fn suite_slice_matches_golden_snapshot() {
    let actual = run_results_to_json(&slice_runs());
    if std::env::var_os("CATCH_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).expect("write golden snapshot");
        eprintln!("blessed {GOLDEN_PATH} ({} bytes)", actual.len());
        return;
    }
    if actual != GOLDEN {
        // Locate the first diverging line for a readable failure.
        let mismatch = actual
            .lines()
            .zip(GOLDEN.lines())
            .enumerate()
            .find(|(_, (a, g))| a != g);
        if let Some((i, (a, g))) = mismatch {
            panic!(
                "golden-stats mismatch at line {}:\n  actual: {a}\n  golden: {g}\n\
                 re-bless with CATCH_BLESS=1 if the change is intended",
                i + 1
            );
        }
        panic!(
            "golden-stats mismatch: lengths differ (actual {} bytes, golden {} bytes); \
             re-bless with CATCH_BLESS=1 if the change is intended",
            actual.len(),
            GOLDEN.len()
        );
    }
}

#[test]
fn golden_snapshot_covers_every_slice_workload() {
    // Guards against a stale snapshot silently shrinking coverage.
    for name in SLICE {
        assert!(
            GOLDEN.contains(&format!("\"workload\": \"{name}\"")),
            "snapshot is missing workload {name}"
        );
    }
}
