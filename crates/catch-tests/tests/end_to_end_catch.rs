//! End-to-end shape tests: the paper's headline claims, at reduced scale.
//!
//! These are the load-bearing assertions of the reproduction: CATCH must
//! recover the no-L2 loss and the oracle/criticality machinery must order
//! configurations the way the paper's figures do.

use catch_core::experiments::{run_suite, EvalConfig, Fidelity};
use catch_core::{geomean_ratio, LoadOracle, System, SystemConfig};
use catch_workloads::suite;

fn eval() -> EvalConfig {
    EvalConfig {
        ops: 25_000,
        warmup: 8_000,
        seed: 42,
        sample: None,
        fidelity: Fidelity::Ooo,
    }
}

/// A small, behaviour-diverse slice of the suite for the heavier tests.
/// A third of each run is warm-up, as in the experiment harness — the
/// paper's effects are steady-state properties.
fn slice_runs(config: &SystemConfig, ops: usize) -> Vec<catch_core::RunResult> {
    let system = System::new(config.clone());
    [
        "xalanc_like",
        "astar_like",
        "bio_like",
        "sysmark_like",
        "tpcc_like",
        "excel_like",
    ]
    .iter()
    .map(|n| system.run_st_warm(suite::by_name(n).unwrap().generate(ops, 42), ops / 3))
    .collect()
}

#[test]
fn figure1_shape_removing_l2_loses_performance() {
    let base = slice_runs(&SystemConfig::baseline_exclusive(), 25_000);
    let no_l2 = slice_runs(
        &SystemConfig::baseline_exclusive().without_l2(6656 << 10),
        25_000,
    );
    let ratio = geomean_ratio(&base, &no_l2);
    assert!(
        ratio < 0.99,
        "removing the L2 must cost performance (got ratio {ratio:.3})"
    );
}

#[test]
fn figure10_shape_catch_recovers_no_l2_loss() {
    let ops = 25_000;
    let base = slice_runs(&SystemConfig::baseline_exclusive(), ops);
    let no_l2 = slice_runs(
        &SystemConfig::baseline_exclusive().without_l2(9728 << 10),
        ops,
    );
    let catch2 = slice_runs(
        &SystemConfig::baseline_exclusive()
            .without_l2(9728 << 10)
            .with_catch(),
        ops,
    );
    let no_l2_ratio = geomean_ratio(&base, &no_l2);
    let catch_ratio = geomean_ratio(&base, &catch2);
    assert!(
        catch_ratio > no_l2_ratio,
        "CATCH must recover no-L2 loss: {catch_ratio:.3} vs {no_l2_ratio:.3}"
    );
    assert!(
        catch_ratio > 0.98,
        "two-level CATCH must be near or above baseline: {catch_ratio:.3}"
    );
}

#[test]
fn figure3_shape_l1_is_most_latency_sensitive() {
    use catch_core::Level;
    // Needs a steady-state window: at smaller scales cold misses dominate
    // and over-weight the outer levels.
    let ops = 60_000;
    let base = slice_runs(&SystemConfig::baseline_exclusive(), ops);
    let slow_l1 = slice_runs(
        &SystemConfig::baseline_exclusive().with_extra_latency(Level::L1, 3),
        ops,
    );
    let slow_llc = slice_runs(
        &SystemConfig::baseline_exclusive().with_extra_latency(Level::Llc, 3),
        ops,
    );
    let l1_impact = 1.0 - geomean_ratio(&base, &slow_l1);
    let llc_impact = 1.0 - geomean_ratio(&base, &slow_llc);
    assert!(
        l1_impact > llc_impact,
        "L1 latency (+{:.2}%) must matter more than LLC latency (+{:.2}%)",
        100.0 * l1_impact,
        100.0 * llc_impact
    );
}

#[test]
fn figure4_shape_noncritical_demotion_is_cheaper() {
    use catch_core::Level;
    use catch_criticality::DetectorConfig;
    let ops = 25_000;
    let base_cfg = SystemConfig::baseline_exclusive().oracle_study();
    let base = slice_runs(&base_cfg, ops);
    let all = slice_runs(
        &base_cfg.clone().with_oracle(LoadOracle::Demote {
            level: Level::L2,
            only_noncritical: false,
        }),
        ops,
    );
    let noncrit = slice_runs(
        &base_cfg
            .clone()
            .with_oracle(LoadOracle::Demote {
                level: Level::L2,
                only_noncritical: true,
            })
            .with_detector(DetectorConfig::paper().with_track_levels(&[Level::L2])),
        ops,
    );
    let all_loss = 1.0 - geomean_ratio(&base, &all);
    let noncrit_loss = 1.0 - geomean_ratio(&base, &noncrit);
    assert!(
        noncrit_loss < all_loss,
        "sparing critical L2 hits must reduce the loss: all {:.3} vs noncrit {:.3}",
        all_loss,
        noncrit_loss
    );
}

#[test]
fn figure5_shape_oracle_prefetch_gains() {
    let ops = 25_000;
    let base_cfg = SystemConfig::baseline_exclusive().oracle_study();
    let base = slice_runs(&base_cfg, ops);
    let oracle = slice_runs(
        &base_cfg.clone().with_oracle(LoadOracle::CriticalPrefetch),
        ops,
    );
    let ratio = geomean_ratio(&base, &oracle);
    assert!(
        ratio > 1.0,
        "serving critical L2/LLC hits at L1 latency must gain: {ratio:.3}"
    );
}

#[test]
fn experiments_registry_runs_quickly() {
    // Smoke-test the registry glue on the full suite at tiny scale.
    let report = catch_core::experiments::run("tab1", &eval());
    assert!(report.to_string().contains("TOTAL"));
    let report = catch_core::experiments::run("tab2", &eval());
    assert!(report.to_string().contains("mcf_like"));
}

#[test]
fn full_suite_baseline_sanity() {
    let runs = run_suite(&SystemConfig::baseline_exclusive(), &EvalConfig::quick());
    assert_eq!(runs.len(), 28);
    for r in &runs {
        assert!(r.ipc() > 0.02, "{} IPC {}", r.workload, r.ipc());
    }
}
