//! Stall skip-ahead parity: the skip-ahead cycle loop must be
//! *bit-identical* to the naive one-cycle-at-a-time loop — every
//! counter, every occupancy histogram bucket, and every emitted
//! observability event, on every golden workload.
//!
//! Skip-ahead jumps the clock over spans where no pipeline progress is
//! possible, bulk-reproducing the per-cycle side effects (occupancy
//! samples, icache stall accounting, periodic maintenance) that the
//! naive loop would have performed. These tests are the proof the
//! reproduction is exact; `CoreConfig::skip_ahead` exists so both loops
//! stay runnable forever.

use catch_core::report::json::run_results_to_json;
use catch_core::{Engine, EventClass, Obs, SampleConfig, System, SystemConfig, VecSink};
use catch_workloads::suite;
use std::sync::{Arc, Mutex};

/// Same slice, scale and seed as the golden-stats snapshot.
const SLICE: [&str; 6] = [
    "xalanc_like",
    "astar_like",
    "bio_like",
    "sysmark_like",
    "tpcc_like",
    "excel_like",
];
const OPS: usize = 25_000;
const WARMUP: usize = 8_000;
const SEED: u64 = 42;

fn with_skip(mut config: SystemConfig, skip: bool) -> System {
    config.core.skip_ahead = skip;
    System::new(config)
}

#[test]
fn st_counters_bit_identical_on_every_golden_workload() {
    let naive = with_skip(SystemConfig::baseline_exclusive(), false);
    let skip = with_skip(SystemConfig::baseline_exclusive(), true);
    for name in SLICE {
        let trace = suite::by_name(name)
            .expect("known workload")
            .generate(OPS, SEED);
        let a = naive.run_st_warm(trace.clone(), WARMUP);
        let b = skip.run_st_warm(trace, WARMUP);
        assert_eq!(
            run_results_to_json(&[a]),
            run_results_to_json(&[b]),
            "skip-ahead diverged from the naive loop on {name}"
        );
    }
}

#[test]
fn catch_config_counters_bit_identical() {
    // The full CATCH machine exercises the TACT prefetchers and the
    // criticality detector on top of the baseline pipeline.
    let naive = with_skip(SystemConfig::baseline_exclusive().with_catch(), false);
    let skip = with_skip(SystemConfig::baseline_exclusive().with_catch(), true);
    for name in ["tpcc_like", "xalanc_like"] {
        let trace = suite::by_name(name)
            .expect("known workload")
            .generate(OPS, SEED);
        let a = naive.run_st_warm(trace.clone(), WARMUP);
        let b = skip.run_st_warm(trace, WARMUP);
        assert_eq!(
            run_results_to_json(&[a]),
            run_results_to_json(&[b]),
            "skip-ahead diverged under CATCH on {name}"
        );
    }
}

#[test]
fn event_streams_bit_identical() {
    // Every observability event — cycle stamps included — must match,
    // exactly as `--trace-events all` would record them.
    let collect = |skip: bool| {
        let system = with_skip(SystemConfig::baseline_exclusive().with_catch(), skip);
        let trace = suite::by_name("tpcc_like")
            .expect("known workload")
            .generate(6_000, SEED);
        let sink = Arc::new(Mutex::new(VecSink::new()));
        let obs = Obs::attached(sink.clone(), EventClass::ALL);
        let _ = system.run_st_obs(trace, &obs);
        drop(obs);
        let events = sink.lock().expect("sink lock").take();
        events
    };
    let naive = collect(false);
    let skip = collect(true);
    assert_eq!(naive.len(), skip.len(), "event counts diverged");
    for (i, (a, b)) in naive.iter().zip(skip.iter()).enumerate() {
        assert_eq!(a, b, "event {i} diverged");
    }
}

#[test]
fn mp_counters_bit_identical() {
    let mix = catch_workloads::mp::rate4_mixes()
        .into_iter()
        .find(|m| m.name == "rate4_xalanc_like")
        .expect("rate4 mix exists");
    let naive = with_skip(SystemConfig::baseline_exclusive().with_cores(4), false);
    let skip = with_skip(SystemConfig::baseline_exclusive().with_cores(4), true);
    let a = naive.run_mp(mix.generate(6_000, SEED));
    let b = skip.run_mp(mix.generate(6_000, SEED));
    assert_eq!(
        run_results_to_json(&a.per_core),
        run_results_to_json(&b.per_core),
        "skip-ahead diverged on the MP lockstep loop"
    );
}

#[test]
fn skip_and_engine_matrix_bit_identical() {
    // The full `CATCH_NO_SKIP` × `CATCH_ENGINE` matrix (expressed
    // through the config fields those env toggles set): all four
    // combinations must agree. With skip-ahead off the engine choice is
    // inert — that leg pins the naive loop as the common reference for
    // both skip paths.
    let trace = suite::by_name("tpcc_like")
        .expect("known workload")
        .generate(OPS, SEED);
    let mut outputs = Vec::new();
    for engine in [Engine::Tick, Engine::TimeQ] {
        for skip in [false, true] {
            let mut config = SystemConfig::baseline_exclusive().with_catch();
            config.core.skip_ahead = skip;
            config.core.engine = engine;
            let result = System::new(config).run_st_warm(trace.clone(), WARMUP);
            outputs.push((engine.name(), skip, run_results_to_json(&[result])));
        }
    }
    let (_, _, reference) = &outputs[0];
    for (engine, skip, json) in &outputs[1..] {
        assert_eq!(
            json, reference,
            "engine={engine} skip_ahead={skip} diverged from the reference loop"
        );
    }
}

#[test]
fn sampled_runs_bit_identical() {
    // Sampled mode mixes fast-forward with detailed windows; both must
    // land on the same reconstruction regardless of the loop.
    let sample = SampleConfig::new(5_000).with_max_clusters(10);
    let trace = suite::by_name("astar_like")
        .expect("known workload")
        .generate(OPS, SEED);
    let naive =
        with_skip(SystemConfig::baseline_exclusive(), false).run_sampled(trace.clone(), &sample);
    let skip = with_skip(SystemConfig::baseline_exclusive(), true).run_sampled(trace, &sample);
    assert_eq!(
        run_results_to_json(&[naive.result]),
        run_results_to_json(&[skip.result]),
        "skip-ahead diverged in sampled mode"
    );
}
