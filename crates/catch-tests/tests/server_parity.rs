//! End-to-end parity for simulation-as-a-service: the full experiment
//! registry served by a `catch-server` daemon must be byte-identical to
//! a local `experiments::run_all`, and a second identical pass must be
//! answered entirely from cache (zero recomputation).
//!
//! One test, deliberately: it owns the process-global [`RunCache`] for
//! its whole duration (integration tests share the process), runs the
//! registry three times (two served passes + one local reference), and
//! finishes with a graceful drain.

use catch_core::experiments::{self, EvalConfig, Fidelity};
use catch_core::RunCache;
use catch_server::{Client, Priority, Server, ServerConfig};
use std::collections::BTreeMap;

#[test]
fn full_registry_via_daemon_is_byte_identical_and_warm_on_second_pass() {
    let eval = EvalConfig {
        ops: 800,
        warmup: 200,
        seed: 42,
        sample: None,
        fidelity: Fidelity::Ooo,
    };
    let ids = experiments::all_ids();
    assert_eq!(ids.len(), 21, "registry size changed; update this suite");

    let path = std::env::temp_dir().join(format!("catch-parity-{}.sock", std::process::id()));
    let handle = Server::bind(&path, ServerConfig::default()).expect("bind daemon");
    let cache = RunCache::global();
    cache.reset_memory();

    // Pass 1 (cold): two clients split the registry and run concurrently
    // — alice takes the even indices interactively, bob sweeps the odd
    // ones — so the pass exercises fair-share accounting and cross-client
    // dedup of the shared baseline suites, not just the protocol.
    let first: BTreeMap<String, String> = std::thread::scope(|scope| {
        let (path, eval, ids) = (&path, &eval, &ids);
        let half = |name: &'static str, priority, parity: usize| {
            scope.spawn(move || {
                let mut client = Client::connect(path)
                    .expect("connect")
                    .with_identity(name, priority);
                ids.iter()
                    .enumerate()
                    .filter(|(i, _)| i % 2 == parity)
                    .map(|(_, id)| (id.to_string(), client.run(id, eval).expect("served run")))
                    .collect::<Vec<_>>()
            })
        };
        let alice = half("alice", Priority::Interactive, 0);
        let bob = half("bob", Priority::Sweep, 1);
        let mut reports = alice.join().expect("alice");
        reports.extend(bob.join().expect("bob"));
        reports.into_iter().collect()
    });
    assert_eq!(first.len(), ids.len(), "every id produced a report");

    let mut probe = Client::connect(&path).expect("connect");
    let (sched_cold, cache_cold, _) = probe.stats().expect("stats after cold pass");
    assert_eq!(sched_cold.completed, ids.len() as u64);
    assert!(
        sched_cold
            .shares
            .iter()
            .any(|(c, n)| c == "alice" && *n > 0)
            && sched_cold.shares.iter().any(|(c, n)| c == "bob" && *n > 0),
        "both clients were charged for dispatched work: {:?}",
        sched_cold.shares
    );

    // Pass 2 (warm): the identical registry again; the run-cache miss
    // counter must not move — zero recomputation across the service.
    let mut warm_client = Client::connect(&path)
        .expect("connect")
        .with_identity("carol", Priority::Background);
    for id in &ids {
        let served = warm_client.run(id, &eval).expect("warm served run");
        assert_eq!(
            served, first[*id],
            "{id}: warm pass bytes differ from cold pass"
        );
    }
    let (_, cache_warm, _) = probe.stats().expect("stats after warm pass");
    assert_eq!(
        cache_warm.misses, cache_cold.misses,
        "the second identical pass recomputed a simulation"
    );

    // Graceful shutdown: drain acknowledged, clean join, socket gone.
    probe.shutdown().expect("shutdown acknowledged");
    drop(probe);
    drop(warm_client);
    handle.wait().expect("clean drain");
    assert!(!path.exists(), "socket unlinked on exit");

    // Local reference: the same registry through run_all (warm memory
    // cache — byte identity is about rendering, not recomputation).
    let local = experiments::run_all(&ids, &eval, None);
    assert_eq!(local.len(), ids.len());
    for (id, report) in &local {
        assert_eq!(
            &report.to_string(),
            &first[id],
            "{id}: served report differs from local run_all"
        );
    }
    cache.reset_memory();
}
