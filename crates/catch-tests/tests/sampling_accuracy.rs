//! Acceptance suite for SimPoint-style sampled simulation.
//!
//! Three properties anchor the sampling subsystem:
//!
//! 1. **Accuracy** — for each golden workload, the sampled run
//!    reconstructs IPC within 5% and L2/LLC miss counts within 10% of
//!    the full detailed run.
//! 2. **Bit-identity** — with the cluster cap at the interval count
//!    every interval is its own singleton representative, there are no
//!    fast-forward gaps, and the sampled run must reproduce `run_st`
//!    counter-for-counter (and report a zero error bound).
//! 3. **Speedup** — on a long trace the sampled run must do at most a
//!    fifth of the detailed work of the full run. CI boxes make wall
//!    clock unreliable, so the assertion is on `detailed_ops` (the ops
//!    simulated cycle-accurately), which is what the speedup buys.

use catch_core::experiments::GOLDEN_WORKLOADS;
use catch_core::{SampleConfig, System, SystemConfig};
use catch_trace::counters::Counters;
use catch_workloads::suite;

const OPS: usize = 100_000;
const SEED: u64 = 42;

fn system() -> System {
    System::new(SystemConfig::baseline_exclusive())
}

fn pct_err(sampled: f64, full: f64) -> f64 {
    if full == 0.0 {
        if sampled == 0.0 {
            0.0
        } else {
            100.0
        }
    } else {
        100.0 * (sampled - full).abs() / full
    }
}

#[test]
fn golden_workloads_reconstruct_within_error_budget() {
    let sys = system();
    let sample = SampleConfig::new(5_000).with_max_clusters(10);
    for name in GOLDEN_WORKLOADS {
        let trace = suite::by_name(name)
            .expect("golden workload exists")
            .generate(OPS, SEED);
        let full = sys.run_st(trace.clone());
        let sampled = sys.run_sampled(trace, &sample);

        let ipc_err = pct_err(sampled.result.ipc(), full.ipc());
        assert!(
            ipc_err < 5.0,
            "{name}: sampled IPC off by {ipc_err:.2}% (full {:.4}, sampled {:.4})",
            full.ipc(),
            sampled.result.ipc()
        );

        let l2_full: u64 = full.hierarchy.l2.iter().map(|c| c.misses).sum();
        let l2_sampled: u64 = sampled.result.hierarchy.l2.iter().map(|c| c.misses).sum();
        let l2_err = pct_err(l2_sampled as f64, l2_full as f64);
        assert!(
            l2_err < 10.0,
            "{name}: L2 misses off by {l2_err:.2}% (full {l2_full}, sampled {l2_sampled})"
        );

        let llc_err = pct_err(
            sampled.result.hierarchy.llc.misses as f64,
            full.hierarchy.llc.misses as f64,
        );
        assert!(
            llc_err < 10.0,
            "{name}: LLC misses off by {llc_err:.2}% (full {}, sampled {})",
            full.hierarchy.llc.misses,
            sampled.result.hierarchy.llc.misses
        );
    }
}

#[test]
fn singleton_clusters_are_bit_identical_to_full_run() {
    let sys = system();
    // One cluster per interval: the plan degenerates to "simulate
    // everything in order", which must match run_st exactly.
    let sample = SampleConfig::new(5_000).with_max_clusters(usize::MAX);
    for name in GOLDEN_WORKLOADS {
        let trace = suite::by_name(name)
            .expect("golden workload exists")
            .generate(OPS, SEED);
        let full = sys.run_st(trace.clone());
        let sampled = sys.run_sampled(trace, &sample);
        assert_eq!(
            full.counters(""),
            sampled.result.counters(""),
            "{name}: all-singleton sampling must be bit-identical to run_st"
        );
        assert_eq!(
            sampled.sampling.ipc_error_bound_pct, 0.0,
            "{name}: singleton clusters have zero dispersion, so zero bound"
        );
    }
}

#[test]
fn long_trace_does_a_fifth_of_the_detailed_work() {
    // A 10x-length trace with a small cluster cap: the speedup claim,
    // smoke-checked via the detailed-work proxy rather than wall clock.
    let sys = system();
    let ops = 10 * 25_000;
    let trace = suite::by_name("tpcc_like")
        .expect("golden workload exists")
        .generate(ops, SEED);
    let sample = SampleConfig::new(5_000).with_max_clusters(4);
    let sampled = sys.run_sampled(trace, &sample);
    let s = &sampled.sampling;
    // Count the detailed-warmup ramps as detailed work too: gaps that
    // precede a measured representative run warmup_ops cycle-accurately.
    let warmup_work = s.clusters as u64 * sample.warmup_ops as u64;
    let detailed = s.detailed_ops + warmup_work;
    assert!(
        detailed * 5 <= s.total_ops,
        "sampled run must do <= 1/5 of the detailed work: \
         {detailed} of {} ops (measured {}, warmup ramp <= {warmup_work})",
        s.total_ops,
        s.detailed_ops
    );
    // The proxy only holds if the plan actually skipped intervals.
    assert!(
        s.clusters < s.intervals,
        "speed smoke needs a non-degenerate plan ({} clusters / {} intervals)",
        s.clusters,
        s.intervals
    );
}
