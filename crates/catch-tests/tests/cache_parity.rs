//! Run-cache parity: memoization must be invisible in the science.
//!
//! The process-wide [`RunCache`] may serve a simulation from memory, from
//! disk, or compute it fresh — the rendered reports must be byte-identical
//! in every mode, every structurally distinct configuration must map to a
//! distinct fingerprint, and the registry orchestrator (`run_all`) must
//! assemble its reports entirely from cache hits.
//!
//! Tests here mutate the global cache's mode, so every test that touches
//! it serializes on one lock and restores in-memory mode before releasing.

use catch_cache::Level;
use catch_core::experiments::{self, run_suite_parallel, EvalConfig, Fidelity};
use catch_core::report::json::{run_result_to_json, run_results_to_json};
use catch_core::{run_fingerprint, CacheMode, RunCache, RunResult, SystemConfig};
use catch_criticality::DetectorConfig;
use catch_trace::counters::Counters;
use std::path::PathBuf;
use std::sync::Mutex;

/// Serializes tests that flip the global cache's mode (integration tests
/// share one process and the cache is process-wide).
static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn tiny() -> EvalConfig {
    EvalConfig {
        ops: 2_000,
        warmup: 500,
        seed: 42,
        sample: None,
        fidelity: Fidelity::Ooo,
    }
}

/// Runs `f` with the global cache in `mode` and a cleared memory cache,
/// restoring default in-memory mode afterwards.
fn with_mode<R>(mode: CacheMode, f: impl FnOnce(&'static RunCache) -> R) -> R {
    let cache = RunCache::global();
    cache.set_mode(mode);
    cache.reset_memory();
    let out = f(cache);
    cache.set_mode(CacheMode::Memory);
    cache.reset_memory();
    out
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("catch-cache-parity-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn reports_are_byte_identical_across_cache_modes() {
    let _guard = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let eval = tiny();
    let render = |_: &str| experiments::run("fig1", &eval).to_string();

    let off = with_mode(CacheMode::Off, |_| render("off"));
    let memory = with_mode(CacheMode::Memory, |_| render("memory"));
    assert_eq!(off, memory, "in-memory caching changed a report");

    let dir = scratch_dir("modes");
    let (cold, warm) = with_mode(CacheMode::Disk(dir.clone()), |cache| {
        let cold = render("disk-cold");
        // Drop the memory cache: the warm pass must decode from disk.
        cache.reset_memory();
        let before = cache.summary();
        let warm = render("disk-warm");
        let after = cache.summary();
        assert_eq!(
            after.misses, before.misses,
            "warm disk pass recomputed a simulation"
        );
        assert!(
            after.disk_hits > before.disk_hits,
            "warm disk pass never touched the disk cache"
        );
        (cold, warm)
    });
    assert_eq!(off, cold, "cold disk-backed report differs");
    assert_eq!(off, warm, "warm disk-backed report differs");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn suite_runs_identical_with_and_without_cache() {
    let _guard = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let eval = tiny();
    let config = SystemConfig::baseline_exclusive().with_catch();
    let run = || run_suite_parallel(&config, &eval, Some(2));
    let uncached = with_mode(CacheMode::Off, |_| run());
    let cached = with_mode(CacheMode::Memory, |_| {
        let first = run();
        let second = run(); // pure hits
        assert_eq!(
            run_results_to_json(&first),
            run_results_to_json(&second),
            "memoized rerun diverged"
        );
        first
    });
    assert_eq!(
        run_results_to_json(&uncached),
        run_results_to_json(&cached),
        "cache-off and cache-on suite results differ"
    );
}

#[test]
fn run_all_assembles_entirely_from_cache_hits() {
    let _guard = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let eval = EvalConfig {
        ops: 800,
        warmup: 200,
        seed: 42,
        sample: None,
        fidelity: Fidelity::Ooo,
    };
    // Every registry id with suite requests: after run_all's global work
    // queue drains, report assembly must add zero misses — the collected
    // request set and the experiment bodies cannot drift.
    let ids: Vec<&str> = experiments::all_ids()
        .into_iter()
        .filter(|id| !experiments::suite_requests(id).is_empty())
        .collect();
    assert_eq!(ids.len(), 12, "suite-request coverage changed");
    with_mode(CacheMode::Memory, |cache| {
        let reports = experiments::run_all(&ids, &eval, Some(2));
        assert_eq!(reports.len(), ids.len());
        let after_all = cache.summary();
        // Re-running every report now must be a pure cache replay.
        for id in &ids {
            let direct = experiments::run(id, &eval).to_string();
            let from_all = reports
                .iter()
                .find(|(rid, _)| rid == id)
                .map(|(_, r)| r.to_string())
                .expect("report present");
            assert_eq!(direct, from_all, "{id}: run_all report differs");
        }
        let after_replay = cache.summary();
        assert_eq!(
            after_replay.misses, after_all.misses,
            "an experiment body requested a simulation run_all did not collect"
        );
    });
}

#[test]
fn fingerprints_separate_every_config_eval_and_workload_perturbation() {
    let eval = tiny();
    let base = SystemConfig::baseline_exclusive();
    let fp = |c: &SystemConfig, e: &EvalConfig, w: &str| run_fingerprint(c, e, w).0;
    let reference = fp(&base, &eval, "tpcc_like");

    // Structural SystemConfig perturbations (one per builder axis).
    let variants: Vec<SystemConfig> = vec![
        SystemConfig::baseline_inclusive(),
        base.clone().without_l2(6656 << 10),
        base.clone().with_catch(),
        base.clone().with_cores(2),
        base.clone().with_ring(4),
        base.clone().oracle_study(),
        base.clone().with_extra_latency(Level::L1, 1),
        base.clone().with_tact_components(true, false, false, false),
        base.clone()
            .with_detector(DetectorConfig::paper().with_table_entries(8)),
    ];
    let mut seen = vec![reference];
    for v in &variants {
        let f = fp(v, &eval, "tpcc_like");
        assert!(!seen.contains(&f), "collision for config '{}'", v.name);
        seen.push(f);
    }

    // EvalConfig field perturbations.
    let mut ops = eval;
    ops.ops += 1;
    let mut warmup = eval;
    warmup.warmup += 1;
    let mut seed = eval;
    seed.seed += 1;
    let sampled = eval.with_sample(500);
    for (label, e) in [
        ("ops", ops),
        ("warmup", warmup),
        ("seed", seed),
        ("sample", sampled),
    ] {
        let f = fp(&base, &e, "tpcc_like");
        assert!(!seen.contains(&f), "collision for eval field '{label}'");
        seen.push(f);
    }

    // Workload identity.
    let f = fp(&base, &eval, "mcf_like");
    assert!(!seen.contains(&f), "collision across workloads");

    // The display name is a report label, not part of the key.
    assert_eq!(
        reference,
        fp(&base.clone().named("renamed"), &eval, "tpcc_like"),
        "renaming a config must not split the cache key"
    );
}

#[test]
fn run_result_round_trips_through_flat_counters() {
    // The disk cache persists a RunResult as its flat counter list; the
    // decode path must reproduce the exact value (same JSON bytes).
    let _guard = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let eval = tiny();
    let results = with_mode(CacheMode::Off, |_| {
        run_suite_parallel(
            &SystemConfig::baseline_exclusive().with_catch(),
            &eval,
            Some(1),
        )
    });
    for r in &results {
        let rebuilt = RunResult::from_parts(
            r.workload.clone(),
            r.category.label(),
            r.config.clone(),
            r.counters(""),
        )
        .expect("round trip decodes");
        assert_eq!(
            run_result_to_json(r, 0),
            run_result_to_json(&rebuilt, 0),
            "round trip changed {}",
            r.workload
        );
    }
}
