//! Property tests for the `timeq` event-queue machinery, driven by the
//! in-repo deterministic [`Cases`] harness (no external proptest).
//!
//! The [`CalendarQueue`] (bucketed wheel + overflow heap + lazy stale
//! pruning) and the [`HiBitSet`] (two-level bitmask) are checked
//! against naive reference models — a `BTreeMap` keyed by cycle and a
//! `Vec<bool>` — over randomized operation sequences with a
//! monotonically advancing clock. Each failure message carries the
//! replay seed.
//!
//! The engine-level edge cases the queue exists to serve (zero-delay
//! self-wake, simultaneous multi-component events, backpressure
//! re-post) are exercised here too, at the API level; the end-to-end
//! versions live in `engine_parity.rs` and `skip_ahead_parity.rs`.

use catch_timeq::{
    Backpressure, CalendarQueue, Cycle, HiBitSet, ServiceRequest, Source, WHEEL_SLOTS,
};
use catch_trace::rng::{Cases, SplitMix64};
use std::collections::BTreeMap;

/// Naive reference for the calendar queue: every pending (cycle, seq,
/// source), ordered by cycle then admission.
#[derive(Default)]
struct ModelQueue {
    now: Cycle,
    pending: BTreeMap<Cycle, Vec<(u64, Source)>>,
    next_seq: u64,
}

impl ModelQueue {
    fn post(&mut self, req: ServiceRequest) -> Result<(Cycle, u64), Backpressure> {
        if req.at < self.now {
            return Err(Backpressure { retry_at: self.now });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if req.source.gating() {
            self.pending
                .entry(req.at)
                .or_default()
                .push((seq, req.source));
        }
        Ok((req.at, seq))
    }

    fn peek_next(&mut self, clock: Cycle) -> Option<Cycle> {
        if clock > self.now {
            self.now = clock;
        }
        let now = self.now;
        self.pending.retain(|&at, _| at >= now);
        self.pending.keys().next().copied()
    }

    fn take_due(&mut self, cycle: Cycle) -> Vec<(u64, Source)> {
        if cycle > self.now {
            self.now = cycle;
        }
        self.pending.remove(&cycle).unwrap_or_default()
    }
}

fn random_source(rng: &mut SplitMix64) -> Source {
    Source::ALL[rng.gen_range(0usize..Source::ALL.len())]
}

#[test]
fn calendar_queue_matches_naive_model() {
    // Random interleavings of post / peek / take against an advancing
    // clock. Deltas up to 3× the wheel span force overflow-heap posts;
    // clock advances past pending entries force lazy stale drops; both
    // paths must stay invisible next to the model.
    Cases::new(64).run(|rng| {
        let mut q = CalendarQueue::new();
        let mut model = ModelQueue::default();
        let mut clock: Cycle = 0;
        for _ in 0..400 {
            match rng.gen_range(0u64..10) {
                // Post: usually near, sometimes beyond the wheel, and
                // sometimes deliberately into the past.
                0..=5 => {
                    let at = if rng.gen_bool(0.1) {
                        clock.saturating_sub(rng.gen_range(1u64..50))
                    } else if rng.gen_bool(0.15) {
                        clock + rng.gen_range(0u64..3 * WHEEL_SLOTS as u64)
                    } else {
                        clock + rng.gen_range(0u64..300)
                    };
                    let req = ServiceRequest::new(at, random_source(rng));
                    let got = q.post(req);
                    let want = model.post(req);
                    match (got, want) {
                        (Ok(t), Ok((at, seq))) => {
                            assert_eq!((t.at, t.seq), (at, seq), "ticket mismatch");
                        }
                        (Err(a), Err(b)) => assert_eq!(a.retry_at, b.retry_at),
                        (g, w) => panic!("admission disagreement: {g:?} vs {w:?}"),
                    }
                }
                // Peek at the current clock.
                6..=7 => {
                    assert_eq!(q.peek_next(clock), model.peek_next(clock), "peek@{clock}");
                }
                // Service the next due cycle exactly as the engine
                // would: jump to it and take everything stamped there.
                8 => {
                    // Peek both unconditionally: peeking advances each
                    // queue's time floor even when nothing is pending.
                    let want = model.peek_next(clock);
                    assert_eq!(q.peek_next(clock), want, "service peek@{clock}");
                    if let Some(next) = want {
                        clock = next;
                        assert_eq!(q.take_due(next), model.take_due(next), "due@{next}");
                    }
                }
                // Progress ticks advanced the clock past some entries
                // without consuming them (they became stale).
                _ => clock += rng.gen_range(1u64..500),
            }
        }
        // Drain whatever is left; both must agree to exhaustion.
        while let Some(next) = model.peek_next(clock) {
            assert_eq!(q.peek_next(clock), Some(next), "drain peek");
            clock = next;
            assert_eq!(q.take_due(next), model.take_due(next), "drain due@{next}");
        }
        assert_eq!(q.peek_next(clock), None, "queue must drain with model");
    });
}

#[test]
fn hibitset_matches_naive_bool_vec() {
    // set / clear / contains / scan / count / shift against Vec<bool>.
    Cases::new(64).run(|rng| {
        let bits = rng.gen_range(1usize..700);
        let mut s = HiBitSet::new(bits);
        let mut model = vec![false; bits];
        for _ in 0..300 {
            match rng.gen_range(0u64..8) {
                0..=2 => {
                    let i = rng.gen_range(0usize..bits);
                    let fresh = s.set(i);
                    assert_eq!(fresh, !model[i], "freshness of set({i})");
                    model[i] = true;
                }
                3..=4 => {
                    let i = rng.gen_range(0usize..bits);
                    s.clear(i);
                    model[i] = false;
                }
                5 => {
                    let from = rng.gen_range(0usize..bits + 4);
                    let want = (from..bits).find(|&i| model[i]);
                    assert_eq!(s.next_set_at_or_after(from), want, "scan from {from}");
                }
                6 => {
                    // Head pop: shift the whole set down one position.
                    s.shift_down_one();
                    model.remove(0);
                    model.push(false);
                }
                _ => {
                    let i = rng.gen_range(0usize..bits);
                    assert_eq!(s.contains(i), model[i], "contains({i})");
                }
            }
        }
        assert_eq!(s.count(), model.iter().filter(|&&b| b).count());
        assert_eq!(s.is_empty(), model.iter().all(|&b| !b));
    });
}

#[test]
fn simultaneous_multi_component_events_replay_in_post_order() {
    // Every source landing on one cycle (the "everything wakes at once"
    // engine edge case): one bucket, admission order preserved, and the
    // queue is empty afterwards — no source shadows another.
    let mut q = CalendarQueue::new();
    let gating: Vec<Source> = Source::ALL.into_iter().filter(|s| s.gating()).collect();
    for (i, &s) in gating.iter().enumerate() {
        // Interleave a non-gating hint between each pair; they must not
        // disturb the FIFO sequence of the gating ones.
        q.post(ServiceRequest::new(77, s)).unwrap();
        let _ = i;
        q.post(ServiceRequest::new(77, Source::Tact)).unwrap();
    }
    assert_eq!(q.peek_next(0), Some(77));
    let due: Vec<Source> = q.take_due(77).iter().map(|&(_, s)| s).collect();
    assert_eq!(due, gating, "same-cycle events must replay in post order");
    assert_eq!(q.peek_next(78), None);
}

#[test]
fn backpressure_repost_is_serviced_before_the_clock_moves() {
    // A component that raced the engine (posted for a cycle the clock
    // already passed) re-posts at `retry_at`; the re-post must be the
    // very next wake — a zero-delay self-wake, not a lost event.
    let mut q = CalendarQueue::new();
    q.peek_next(500);
    let bp = q.post(ServiceRequest::new(499, Source::Mshr)).unwrap_err();
    assert_eq!(bp.retry_at, 500);
    q.post(ServiceRequest::new(bp.retry_at, Source::Mshr))
        .unwrap();
    // A later event must not shadow the self-wake.
    q.post(ServiceRequest::new(600, Source::Exec)).unwrap();
    assert_eq!(q.peek_next(500), Some(500));
    let due = q.take_due(500);
    assert_eq!(due.len(), 1);
    assert_eq!(due[0].1, Source::Mshr);
    assert_eq!(q.peek_next(500), Some(600));
}

#[test]
fn repeated_zero_delay_self_wakes_terminate() {
    // Pathological: a component keeps re-posting at the current cycle.
    // Each post is admitted and immediately due — the queue must hand
    // each one back rather than accumulate or starve.
    let mut q = CalendarQueue::new();
    q.peek_next(42);
    for round in 0..100 {
        q.post(ServiceRequest::new(42, Source::Frontend)).unwrap();
        assert_eq!(q.peek_next(42), Some(42), "round {round}");
        assert_eq!(q.take_due(42).len(), 1, "round {round}");
    }
    assert!(q.is_empty());
    assert_eq!(q.stats().posted, 100);
}

#[test]
fn wheel_rollover_spanning_many_rotations_stays_ordered() {
    // Posts separated by multiple full wheel rotations reuse slots; the
    // queue must always surface them in cycle order regardless of how
    // slot indices alias.
    let n = WHEEL_SLOTS as Cycle;
    let mut q = CalendarQueue::new();
    let mut clock = 0;
    for rotation in 0..5u64 {
        let at = clock + n - 3; // same slot index every rotation
        q.post(ServiceRequest::new(at, Source::Exec)).unwrap();
        assert_eq!(q.peek_next(clock), Some(at), "rotation {rotation}");
        clock = at;
        assert_eq!(q.take_due(at).len(), 1);
        clock += 1;
    }
    assert_eq!(q.peek_next(clock), None);
}
