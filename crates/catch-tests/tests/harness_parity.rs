//! Parallel/serial parity: `run_suite_parallel` must produce results
//! bit-identical to a serial run for every worker count — parallelism
//! only changes wall-clock time, never the science.

use catch_core::experiments::{run_suite_parallel, EvalConfig, Fidelity};
use catch_core::report::json::run_results_to_json;
use catch_core::SystemConfig;
use catch_trace::counters::Counters;

fn eval() -> EvalConfig {
    EvalConfig {
        ops: 4_000,
        warmup: 1_000,
        seed: 42,
        sample: None,
        fidelity: Fidelity::Ooo,
    }
}

#[test]
fn parallel_suite_is_bit_identical_to_serial() {
    let config = SystemConfig::baseline_exclusive();
    let eval = eval();
    let serial = run_suite_parallel(&config, &eval, Some(1));
    let parallel = run_suite_parallel(&config, &eval, Some(4));

    assert_eq!(serial.len(), parallel.len(), "suite length differs");
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.workload, p.workload, "workload order differs");
        assert_eq!(s.config, p.config);
        assert_eq!(
            s.counters(""),
            p.counters(""),
            "counters diverge for workload {}",
            s.workload
        );
    }
    // The strongest form: the rendered JSON reports are byte-identical.
    assert_eq!(
        run_results_to_json(&serial),
        run_results_to_json(&parallel),
        "serial and parallel JSON reports differ"
    );
}

#[test]
fn oversubscribed_workers_are_still_identical() {
    // More workers than jobs: excess workers find the queue drained and
    // exit; the index-ordered reduction keeps the output stable.
    let config = SystemConfig::baseline_exclusive();
    let eval = eval();
    let serial = run_suite_parallel(&config, &eval, Some(1));
    let flooded = run_suite_parallel(&config, &eval, Some(64));
    assert_eq!(
        run_results_to_json(&serial),
        run_results_to_json(&flooded),
        "oversubscribed run diverged from serial"
    );
}
