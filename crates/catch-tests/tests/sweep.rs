//! End-to-end guarantees of the design-space sweep engine (DESIGN.md
//! §13) and the fair-share cost reconciliation it leans on:
//!
//! * an interrupted sweep resumes from its checkpoint journal with
//!   **zero recompute** (run-cache miss delta) and a final report
//!   **byte-identical** to an uninterrupted run;
//! * a daemon serves the Pareto report through the `sweep` priority
//!   class, byte-identical to a local `run_sweep`;
//! * a client replaying warm (fully cached) work is billed its
//!   *measured* cost (~zero), not the nominal dispatch charge.
//!
//! The tests in this binary share one process and therefore one global
//! [`RunCache`]; a file-level mutex serializes them so miss-delta
//! assertions stay exact.

use catch_core::experiments::{EvalConfig, Fidelity};
use catch_core::sweep::{run_sweep, SweepOptions, SweepSpec};
use catch_core::RunCache;
use catch_server::{Client, Priority, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Mutex;

static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn tiny() -> EvalConfig {
    EvalConfig {
        ops: 2_000,
        warmup: 500,
        seed: 42,
        sample: None,
        fidelity: Fidelity::Ooo,
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("catch-sweep-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(tag)
}

#[test]
fn interrupted_sweep_resumes_byte_identically_with_zero_recompute() {
    let _guard = CACHE_LOCK.lock().unwrap();
    let spec = SweepSpec::quick();
    let eval = tiny();
    let workloads = spec.workloads.len() as u64;

    // Reference: one uninterrupted run against its own journal.
    let ref_journal = scratch("reference.journal");
    let _ = std::fs::remove_file(&ref_journal);
    let reference = run_sweep(
        &spec,
        &eval,
        &SweepOptions {
            jobs: None,
            checkpoint: Some(ref_journal),
            limit: None,
            spot_stride: None,
        },
    )
    .expect("reference sweep");
    assert_eq!(reference.computed, reference.total);
    assert_eq!(reference.remaining, 0);

    // "Kill" a second sweep after 5 points (cooperative interruption:
    // exactly what a SIGKILL mid-run leaves behind, since every
    // completed point is journaled before the next one starts).
    let journal = scratch("interrupted.journal");
    let _ = std::fs::remove_file(&journal);
    let opts = SweepOptions {
        jobs: None,
        checkpoint: Some(journal),
        limit: None,
        spot_stride: None,
    };
    let partial = run_sweep(
        &spec,
        &eval,
        &SweepOptions {
            limit: Some(5),
            ..opts.clone()
        },
    )
    .expect("interrupted sweep");
    assert_eq!(partial.computed, 5);
    assert_eq!(partial.remaining, reference.total - 5);
    let partial_text = partial.report.to_string();
    assert!(
        partial_text.contains("partial sweep"),
        "interrupted reports say so: {partial_text}"
    );

    // Resume with a cold in-memory cache: the journaled 5 points must
    // come back without a single simulation; only the rest computes.
    RunCache::global().reset_memory();
    let before = RunCache::global().summary().misses;
    let resumed = run_sweep(&spec, &eval, &opts).expect("resumed sweep");
    let miss_delta = RunCache::global().summary().misses - before;
    assert_eq!(resumed.resumed, 5, "journaled points restored");
    assert_eq!(resumed.computed, reference.total - 5);
    assert_eq!(
        miss_delta,
        (reference.total as u64 - 5) * workloads,
        "resume simulated only the unjournaled points (baseline came from the header)"
    );
    assert_eq!(
        resumed.report.to_string(),
        reference.report.to_string(),
        "resumed report is byte-identical to the uninterrupted run"
    );

    // A second resume of the now-complete journal is pure replay.
    RunCache::global().reset_memory();
    let before = RunCache::global().summary().misses;
    let replay = run_sweep(&spec, &eval, &opts).expect("replayed sweep");
    assert_eq!(
        RunCache::global().summary().misses,
        before,
        "zero recompute"
    );
    assert_eq!((replay.computed, replay.resumed), (0, reference.total));
    assert_eq!(replay.report.to_string(), reference.report.to_string());
}

#[test]
fn daemon_serves_sweep_reports_through_the_sweep_priority_class() {
    let _guard = CACHE_LOCK.lock().unwrap();
    let eval = tiny();
    let local = run_sweep(&SweepSpec::quick(), &eval, &SweepOptions::default())
        .expect("local sweep")
        .report
        .to_string();

    let sock = scratch("sweep-daemon.sock");
    let handle = Server::bind(
        &sock,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind daemon");
    let served = Client::connect(&sock)
        .expect("connect")
        .with_identity("carol", Priority::Sweep)
        .run("sweep", &eval)
        .expect("served sweep");
    assert_eq!(served, local, "served Pareto report matches a local run");
    handle.begin_drain();
    handle.wait().expect("clean drain");
}

#[test]
fn warm_replays_are_billed_measured_cost_not_nominal() {
    let _guard = CACHE_LOCK.lock().unwrap();
    let eval = tiny();
    let sock = scratch("fair-share.sock");
    let handle = Server::bind(
        &sock,
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind daemon");
    let run_as = |name: &str| {
        Client::connect(&sock)
            .expect("connect")
            .with_identity(name, Priority::Sweep)
            .run("fig1", &eval)
            .expect("run succeeds")
    };
    // dana pays for the cold simulations; erin replays them warm.
    let cold = run_as("dana");
    let warm = run_as("erin");
    assert_eq!(cold, warm, "warm replay returns identical bytes");

    let mut client = Client::connect(&sock).expect("connect");
    let (sched, _, _) = client.stats().expect("stats");
    let share = |who: &str| {
        sched
            .shares
            .iter()
            .find(|(c, _)| c == who)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    assert!(
        share("dana") > eval.ops as u64,
        "cold work bills at least one simulation beyond the nominal charge \
         (got {})",
        share("dana")
    );
    assert_eq!(
        share("erin"),
        0,
        "a fully warm replay reconciles to zero instead of the nominal {}",
        eval.ops
    );
    handle.begin_drain();
    handle.wait().expect("clean drain");
}
