//! Observability-layer regression tests.
//!
//! Three guarantees:
//!
//! 1. **Stats neutrality** — attaching a sink (even one receiving every
//!    event class) must not change a single simulation counter: the
//!    stats JSON of an observed run is byte-identical to a silent run.
//! 2. **Trace stability** — the event stream for a pinned workload,
//!    scale and seed is deterministic; a golden summary (event count,
//!    per-name taxonomy histogram, first/last records) guards it. To
//!    re-bless after an intended change:
//!
//!    ```sh
//!    CATCH_BLESS=1 cargo test -p catch-tests --test observability
//!    git diff crates/catch-tests/tests/golden/event_trace.txt
//!    ```
//!
//! 3. **Export integrity** — the Chrome exporter writes valid JSON, and
//!    the part-file merge produces byte-identical traces for every
//!    worker count (same mechanism the `--trace-events all` mode of the
//!    `run_experiment` example uses).

use catch_core::experiments::runner::Runner;
use catch_core::report::json::run_results_to_json;
use catch_core::{
    merge_parts, part_path, ChromeTraceSink, EventClass, NullSink, Obs, System, SystemConfig,
    TraceFormat, VecSink,
};
use catch_obs::json_lint::validate_json;
use catch_workloads::suite;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

const OPS: usize = 6_000;
const SEED: u64 = 42;
const WORKLOAD: &str = "tpcc_like";

const GOLDEN_PATH: &str = "tests/golden/event_trace.txt";
const GOLDEN: &str = include_str!("golden/event_trace.txt");

fn catch_system() -> System {
    System::new(SystemConfig::baseline_exclusive().with_catch())
}

fn golden_trace() -> Vec<catch_core::Event> {
    let trace = suite::by_name(WORKLOAD)
        .expect("golden workload exists")
        .generate(OPS, SEED);
    let sink = Arc::new(Mutex::new(VecSink::new()));
    let obs = Obs::attached(sink.clone(), EventClass::ALL);
    let _ = catch_system().run_st_obs(trace, &obs);
    drop(obs);
    let events = sink.lock().expect("sink lock").take();
    events
}

/// Renders the trace summary the golden file pins: total event count,
/// the per-name histogram in taxonomy-name order, and the first/last
/// records verbatim.
fn trace_summary(events: &[catch_core::Event]) -> String {
    let mut out = String::new();
    out.push_str(&format!("workload {WORKLOAD} ops {OPS} seed {SEED}\n"));
    out.push_str(&format!("events {}\n", events.len()));
    let mut counts: Vec<(&'static str, u64)> = Vec::new();
    for e in events {
        match counts.iter_mut().find(|(n, _)| *n == e.name()) {
            Some((_, c)) => *c += 1,
            None => counts.push((e.name(), 1)),
        }
    }
    counts.sort();
    for (name, n) in counts {
        out.push_str(&format!("{name} {n}\n"));
    }
    if let (Some(first), Some(last)) = (events.first(), events.last()) {
        out.push_str(&format!("first {}\n", first.to_jsonl()));
        out.push_str(&format!("last {}\n", last.to_jsonl()));
    }
    out
}

#[test]
fn event_trace_matches_golden_snapshot() {
    let actual = trace_summary(&golden_trace());
    if std::env::var_os("CATCH_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).expect("write golden trace summary");
        eprintln!("blessed {GOLDEN_PATH} ({} bytes)", actual.len());
        return;
    }
    assert_eq!(
        actual, GOLDEN,
        "event-trace summary diverged from {GOLDEN_PATH}; \
         re-bless with CATCH_BLESS=1 if the change is intended"
    );
}

#[test]
fn event_trace_is_cycle_ordered_per_component_and_covers_taxonomy() {
    let events = golden_trace();
    assert!(!events.is_empty());
    // Cycle stamps never decrease (a single core drives every emit in
    // program order within a cycle).
    for w in events.windows(2) {
        assert!(
            w[0].cycle <= w[1].cycle,
            "events out of cycle order: {} then {}",
            w[0].to_jsonl(),
            w[1].to_jsonl()
        );
    }
    for class in [
        EventClass::CORE,
        EventClass::OCCUPANCY,
        EventClass::CACHE,
        EventClass::DRAM,
        EventClass::CRIT,
    ] {
        assert!(
            events.iter().any(|e| e.class() == class),
            "trace covers no {class:?} events"
        );
    }
}

#[test]
fn event_trace_is_byte_identical_across_cycle_engines() {
    // The timeq engine jumps the clock between posted wake cycles; a
    // queue target even one cycle off would shift an event's stamp. The
    // full JSONL rendering of every event must match the tick engine's
    // byte for byte — and both must match the blessed golden summary,
    // so the snapshot never silently tracks a drifting engine.
    let collect = |engine: catch_core::Engine| {
        let trace = suite::by_name(WORKLOAD)
            .expect("golden workload exists")
            .generate(OPS, SEED);
        let mut config = SystemConfig::baseline_exclusive().with_catch();
        config.core.skip_ahead = true;
        config.core.engine = engine;
        let sink = Arc::new(Mutex::new(VecSink::new()));
        let obs = Obs::attached(sink.clone(), EventClass::ALL);
        let _ = System::new(config).run_st_obs(trace, &obs);
        drop(obs);
        let events = sink.lock().expect("sink lock").take();
        events
    };
    let tick = collect(catch_core::Engine::Tick);
    let timeq = collect(catch_core::Engine::TimeQ);
    let tick_bytes: Vec<String> = tick.iter().map(|e| e.to_jsonl()).collect();
    let timeq_bytes: Vec<String> = timeq.iter().map(|e| e.to_jsonl()).collect();
    assert_eq!(
        tick_bytes, timeq_bytes,
        "event trace bytes diverged between cycle engines"
    );
    assert_eq!(
        trace_summary(&timeq),
        GOLDEN,
        "timeq trace summary diverged from the blessed golden"
    );
}

#[test]
fn observed_run_stats_are_byte_identical_to_silent_run() {
    let spec = suite::by_name(WORKLOAD).expect("golden workload exists");
    let system = catch_system();
    let silent = system.run_st_warm(spec.generate(OPS, SEED), 1_000);
    let obs = Obs::attached(Arc::new(Mutex::new(NullSink)), EventClass::ALL);
    let observed = system.run_st_warm_obs(spec.generate(OPS, SEED), 1_000, &obs);
    assert_eq!(
        run_results_to_json(std::slice::from_ref(&silent)),
        run_results_to_json(std::slice::from_ref(&observed)),
        "attaching a sink changed simulation statistics"
    );
}

#[test]
fn chrome_trace_export_is_valid_json() {
    let dir = std::env::temp_dir().join("catch-tests-chrome-export");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("trace.json");
    let trace = suite::by_name(WORKLOAD)
        .expect("golden workload exists")
        .generate(OPS, SEED);
    let sink = Arc::new(Mutex::new(
        ChromeTraceSink::create(&path).expect("create trace file"),
    ));
    let obs = Obs::attached(sink.clone(), EventClass::ALL);
    let _ = catch_system().run_st_obs(trace, &obs);
    obs.finish().expect("flush trace file");
    let events = sink.lock().expect("sink lock").events();
    assert!(events > 0);
    let text = std::fs::read_to_string(&path).expect("read trace file");
    validate_json(&text).expect("chrome trace is valid JSON");
    assert!(text.starts_with("{\"traceEvents\":["));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merged_trace_is_byte_identical_across_job_counts() {
    let workloads = ["xalanc_like", "astar_like", "tpcc_like"];
    let dir = std::env::temp_dir().join("catch-tests-trace-merge");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let system = catch_system();
    let run_with_jobs = |jobs: usize| -> Vec<u8> {
        let out = dir.join(format!("trace-j{jobs}.json"));
        let parts: Vec<PathBuf> = (0..workloads.len()).map(|i| part_path(&out, i)).collect();
        Runner::with_jobs(jobs).run(&workloads, |i, name| {
            let trace = suite::by_name(name)
                .expect("known workload")
                .generate(2_000, SEED);
            let sink = Arc::new(Mutex::new(
                ChromeTraceSink::create_fragment(&part_path(&out, i)).expect("create part"),
            ));
            let obs = Obs::attached(sink, EventClass::ALL);
            let _ = system.run_st_obs(trace, &obs);
            obs.finish().expect("flush part");
        });
        let merged = merge_parts(&parts, &out, TraceFormat::Chrome).expect("merge parts");
        assert!(merged > 0);
        std::fs::read(&out).expect("read merged trace")
    };
    let serial = run_with_jobs(1);
    let parallel = run_with_jobs(4);
    assert_eq!(
        serial, parallel,
        "merged trace bytes depend on the worker count"
    );
    validate_json(&String::from_utf8(serial).expect("utf8 trace")).expect("merged trace parses");
    std::fs::remove_dir_all(&dir).ok();
}
