//! Precise semantics of the motivation-study oracles (Figures 3–5).

use catch_core::{Level, LoadOracle, System, SystemConfig};
use catch_criticality::DetectorConfig;
use catch_trace::{Addr, ArchReg, TraceBuilder};

/// A trace whose steady state is known exactly: one loop re-reading an
/// L2-resident working set (64 KB > L1, < L2), so almost every load is an
/// L2 hit after the first pass.
fn l2_resident_trace(ops: usize) -> catch_trace::Trace {
    let mut b = TraceBuilder::new("l2_resident");
    let r1 = ArchReg::new(1);
    let top = b.label();
    let lines = 1024u64; // 64 KB
    let mut i = 0u64;
    loop {
        b.jump_to(top);
        b.load(r1, Addr::new((i % lines) * 64), 0);
        b.alu(ArchReg::new(2), &[r1]);
        let more = b.len() < ops;
        b.backedge(top, more);
        i += 1;
        if !more {
            break;
        }
    }
    b.build()
}

fn config_base() -> SystemConfig {
    SystemConfig::baseline_exclusive().oracle_study()
}

#[test]
fn demote_l2_converts_exactly_the_l2_hits() {
    let trace = l2_resident_trace(30_000);
    let demoted = System::new(config_base().with_oracle(LoadOracle::Demote {
        level: Level::L2,
        only_noncritical: false,
    }))
    .run_st_warm(trace.clone(), 10_000);
    // In steady state every load hits the L2 (the set exceeds the L1).
    let l2_hits = demoted.core.memory.loads_by_level[1];
    assert_eq!(
        demoted.core.memory.oracle_converted, l2_hits,
        "every measured L2 hit must be demoted"
    );
    assert!(demoted.core.memory.converted_fraction() > 0.8);
}

#[test]
fn demote_slows_demoted_level_only() {
    let trace = l2_resident_trace(30_000);
    let plain = System::new(config_base()).run_st_warm(trace.clone(), 10_000);
    let demote_l2 = System::new(config_base().with_oracle(LoadOracle::Demote {
        level: Level::L2,
        only_noncritical: false,
    }))
    .run_st_warm(trace.clone(), 10_000);
    let demote_llc = System::new(config_base().with_oracle(LoadOracle::Demote {
        level: Level::Llc,
        only_noncritical: false,
    }))
    .run_st_warm(trace, 10_000);
    assert!(
        demote_l2.ipc() < plain.ipc(),
        "L2 demotion must slow an L2-resident loop: {} vs {}",
        demote_l2.ipc(),
        plain.ipc()
    );
    // The loop has no LLC hits in steady state, so LLC demotion is free.
    assert!(demote_llc.ipc() > 0.95 * plain.ipc());
    assert_eq!(demote_llc.core.memory.oracle_converted, 0);
}

#[test]
fn critical_prefetch_oracle_accelerates_l2_resident_chain() {
    // A *dependent* chain through the L2-resident set, so the loads are
    // critical and the oracle's zero-time prefetch matters.
    let mut b = TraceBuilder::new("l2_chain");
    let r1 = ArchReg::new(1);
    let top = b.label();
    let lines = 1024u64;
    let mut i = 0u64;
    loop {
        b.jump_to(top);
        b.load_dep(r1, Addr::new((i * 379 % lines) * 64), 0, &[r1]);
        let more = b.len() < 30_000;
        b.backedge(top, more);
        i += 1;
        if !more {
            break;
        }
    }
    let trace = b.build();

    let plain = System::new(config_base()).run_st_warm(trace.clone(), 10_000);
    let oracle = System::new(config_base().with_oracle(LoadOracle::CriticalPrefetch))
        .run_st_warm(trace, 10_000);
    assert!(
        oracle.ipc() > 1.5 * plain.ipc(),
        "a serial L2-hit chain at L1 latency must speed up ~3x: {} vs {}",
        oracle.ipc(),
        plain.ipc()
    );
    assert!(oracle.core.memory.oracle_converted > 0);
}

#[test]
fn prefetch_all_upper_bounds_critical_prefetch() {
    let spec = catch_workloads::suite::by_name("xalanc_like").expect("known");
    let trace = spec.generate(40_000, 42);
    let critical = System::new(config_base().with_oracle(LoadOracle::CriticalPrefetch))
        .run_st_warm(trace.clone(), 12_000);
    let all =
        System::new(config_base().with_oracle(LoadOracle::PrefetchAll)).run_st_warm(trace, 12_000);
    // "All PCs" converts a superset of loads.
    assert!(all.core.memory.oracle_converted >= critical.core.memory.oracle_converted);
}

#[test]
fn table_size_bounds_oracle_tracking() {
    // With a 1-entry critical table, at most one PC can be saturated at a
    // time; conversions must be no more than with the 32-entry table.
    let spec = catch_workloads::suite::by_name("xalanc_like").expect("known");
    let trace = spec.generate(40_000, 42);
    let small = System::new(
        config_base()
            .with_oracle(LoadOracle::CriticalPrefetch)
            .with_detector(DetectorConfig::paper().with_table_entries(1)),
    )
    .run_st_warm(trace.clone(), 12_000);
    let big = System::new(
        config_base()
            .with_oracle(LoadOracle::CriticalPrefetch)
            .with_detector(DetectorConfig::paper().with_table_entries(32)),
    )
    .run_st_warm(trace, 12_000);
    assert!(small.core.memory.oracle_converted <= big.core.memory.oracle_converted);
}
