//! Property-based tests over the simulator's core invariants.
//!
//! Properties run on the in-repo deterministic case driver
//! ([`catch_trace::rng::Cases`]); a failing case prints the seed that
//! reproduces it.

use catch_cache::{
    AccessKind, CacheArray, CacheConfig, CacheHierarchy, FixedLatencyBackend, HierarchyConfig,
    Level,
};
use catch_trace::rng::Cases;
use catch_trace::{Addr, ArchReg, LineAddr, TraceBuilder};

/// A cache never holds more lines than its capacity, and a line just
/// filled is always present.
#[test]
fn cache_array_capacity_and_presence() {
    Cases::new(64).run(|rng| {
        let n = rng.gen_range(1usize..200);
        let lines: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..256)).collect();
        let config = CacheConfig::new("t", 16 * 64, 4, 1).expect("valid");
        let mut cache = CacheArray::new(&config);
        for &l in &lines {
            let line = LineAddr::new(l);
            cache.fill(line, false, false);
            assert!(cache.probe(line));
            assert!(cache.occupancy() <= 16);
        }
    });
}

/// Invalidate after fill always finds the line; double-invalidate
/// finds nothing.
#[test]
fn cache_array_invalidate_roundtrip() {
    Cases::new(64).run(|rng| {
        let l = rng.gen_range(0u64..10_000);
        let dirty = rng.gen_bool(0.5);
        let config = CacheConfig::new("t", 64 * 64, 8, 1).expect("valid");
        let mut cache = CacheArray::new(&config);
        let line = LineAddr::new(l);
        cache.fill(line, dirty, false);
        assert_eq!(cache.invalidate(line), Some(dirty));
        assert_eq!(cache.invalidate(line), None);
    });
}

/// Demand access latency equals the level's latency for resident
/// lines, and repeated accesses are monotonically non-increasing in
/// level (a touched line never moves outward).
#[test]
fn hierarchy_access_levels_monotone() {
    Cases::new(64).run(|rng| {
        let n = rng.gen_range(1usize..100);
        let addrs: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..2048)).collect();
        let mut hier = CacheHierarchy::new(
            &HierarchyConfig::skylake_server(1),
            Box::new(FixedLatencyBackend::new(200)),
        );
        let mut cycle = 0;
        for &a in &addrs {
            let line = LineAddr::new(a);
            let first = hier.access(0, AccessKind::Load, line, cycle);
            cycle = first.ready_at(cycle) + 10;
            let second = hier.access(0, AccessKind::Load, line, cycle);
            cycle += 10;
            assert_eq!(
                second.hit_level,
                Level::L1,
                "a just-loaded line must hit the L1"
            );
            assert!(second.latency <= first.latency);
        }
    });
}

/// The same trace always produces the same cycle count (simulator
/// determinism over arbitrary small traces).
#[test]
fn core_is_deterministic() {
    Cases::new(64).run(|rng| {
        use catch_cpu::{Core, CoreConfig};
        let n = rng.gen_range(10usize..80);
        let loads: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.gen_range(0u64..1 << 20), rng.gen_range(0u64..64)))
            .collect();
        let build = || {
            let mut b = TraceBuilder::new("prop");
            for &(addr, chain) in &loads {
                b.load(ArchReg::new(1), Addr::new(addr * 8), addr);
                for _ in 0..(chain % 4) {
                    b.alu(ArchReg::new(2), &[ArchReg::new(1)]);
                }
            }
            b.build()
        };
        let run = || {
            let mut hier = CacheHierarchy::new(
                &HierarchyConfig::skylake_server(1),
                Box::new(FixedLatencyBackend::new(200)),
            );
            let mut core = Core::new(0, build(), CoreConfig::baseline());
            core.run_to_completion(&mut hier).cycles
        };
        assert_eq!(run(), run());
    });
}

/// Retired-instruction count always equals trace length, whatever the
/// branch/mispredict structure.
#[test]
fn all_fetched_ops_retire() {
    Cases::new(64).run(|rng| {
        use catch_cpu::{Core, CoreConfig};
        let n = rng.gen_range(5usize..60);
        let branches: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let mut b = TraceBuilder::new("prop");
        for &taken in &branches {
            b.alu(ArchReg::new(1), &[]);
            let target = b.cursor().advance(8);
            b.cond_branch(taken, target, &[ArchReg::new(1)]);
        }
        let trace = b.build();
        let expect = trace.len() as u64;
        let mut hier = CacheHierarchy::new(
            &HierarchyConfig::skylake_server(1),
            Box::new(FixedLatencyBackend::new(200)),
        );
        let mut core = Core::new(0, trace, CoreConfig::baseline());
        let stats = core.run_to_completion(&mut hier);
        assert_eq!(stats.instructions, expect);
    });
}

/// The criticality detector's critical PCs are always drawn from the
/// PCs actually fed to it.
#[test]
fn detector_reports_only_seen_pcs() {
    Cases::new(64).run(|rng| {
        use catch_criticality::{CriticalityDetector, DetectorConfig, RetiredInst};
        let n = rng.gen_range(30usize..200);
        let lat: Vec<u64> = (0..n).map(|_| rng.gen_range(1u64..60)).collect();
        let config = DetectorConfig {
            rob_size: 8,
            ..DetectorConfig::paper()
        };
        let mut det = CriticalityDetector::new(config);
        let mut seen = Vec::new();
        for (i, &l) in lat.iter().enumerate() {
            let pc = catch_trace::Pc::new(0x1000 + (i as u64 % 7) * 4);
            seen.push(pc);
            let seq = det.next_seq();
            let inst = if i % 3 == 0 {
                RetiredInst::new(pc, l).as_load(Level::L2)
            } else {
                RetiredInst::compute(pc, l, &[seq.saturating_sub(1)])
            };
            det.on_retire(inst);
        }
        for pc in det.critical_pcs() {
            assert!(seen.contains(&pc));
        }
    });
}
