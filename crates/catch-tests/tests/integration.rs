//! Cross-crate integration tests: workloads → core → hierarchy → metrics.

use catch_core::{System, SystemConfig};
use catch_workloads::suite;

fn run(config: SystemConfig, workload: &str, ops: usize) -> catch_core::RunResult {
    let trace = suite::by_name(workload)
        .expect("known workload")
        .generate(ops, 42);
    System::new(config).run_st(trace)
}

#[test]
fn baseline_runs_every_workload() {
    for spec in suite::all() {
        let r = run(SystemConfig::baseline_exclusive(), spec.name, 6_000);
        assert!(
            r.ipc() > 0.02 && r.ipc() < 4.0,
            "{}: implausible IPC {}",
            spec.name,
            r.ipc()
        );
        assert_eq!(r.core.instructions as usize, {
            let t = suite::by_name(spec.name).unwrap().generate(6_000, 42);
            t.len()
        });
    }
}

#[test]
fn runs_are_deterministic() {
    let a = run(SystemConfig::baseline_exclusive(), "mcf_like", 8_000);
    let b = run(SystemConfig::baseline_exclusive(), "mcf_like", 8_000);
    assert_eq!(a.core.cycles, b.core.cycles);
    assert_eq!(a.hierarchy.llc, b.hierarchy.llc);
    assert_eq!(a.dram, b.dram);
}

#[test]
fn l2_resident_workload_hits_l2() {
    // astar-like chases pointers in a 384 KB ring: misses L1 (32 KB) but
    // fits in the 1 MB L2 after warm-up.
    let r = run(SystemConfig::baseline_exclusive(), "astar_like", 40_000);
    let l2 = &r.hierarchy.l2[0];
    assert!(
        l2.hit_rate() > 0.4,
        "astar chase should hit the L2 after warm-up: {}",
        l2.hit_rate()
    );
}

#[test]
fn streaming_workload_misses_caches_and_prefetches() {
    let r = run(SystemConfig::baseline_exclusive(), "lbm_like", 30_000);
    assert!(
        r.core.memory.stream_prefetches > 100,
        "stream prefetcher must engage: {}",
        r.core.memory.stream_prefetches
    );
    assert!(r.hierarchy.traffic.dram_reads > 100);
}

#[test]
fn server_workload_misses_icache() {
    let r = run(SystemConfig::baseline_exclusive(), "tpcc_like", 30_000);
    assert!(
        r.core.frontend.icache_misses > 100,
        "384 KB of code cannot fit the 32 KB L1I: {}",
        r.core.frontend.icache_misses
    );
}

#[test]
fn removing_l2_hurts_l2_resident_workloads() {
    let ops = 40_000;
    let base = run(SystemConfig::baseline_exclusive(), "astar_like", ops);
    let no_l2 = run(
        SystemConfig::baseline_exclusive().without_l2(6656 << 10),
        "astar_like",
        ops,
    );
    assert!(
        no_l2.ipc() < base.ipc(),
        "L2-resident chase must lose without the L2: {} vs {}",
        no_l2.ipc(),
        base.ipc()
    );
}

#[test]
fn catch_detects_critical_loads_and_prefetches() {
    let r = run(
        SystemConfig::baseline_exclusive()
            .without_l2(9728 << 10)
            .with_catch(),
        "xalanc_like",
        40_000,
    );
    assert!(
        r.core.detector.critical_load_observations > 0,
        "detector must observe critical loads"
    );
    assert!(
        r.core.memory.tact_prefetches > 0,
        "TACT must issue prefetches"
    );
    assert!(
        r.hierarchy.timeliness.issued > 0,
        "hierarchy must see TACT prefetches"
    );
}

#[test]
fn dram_stats_are_recovered_through_backend() {
    let r = run(SystemConfig::baseline_exclusive(), "mcf_like", 10_000);
    let dram = r.dram.expect("dram backend");
    assert!(dram.reads > 0);
    assert_eq!(
        dram.reads, r.hierarchy.traffic.dram_reads,
        "hierarchy and DRAM counters must agree on reads"
    );
}

#[test]
fn inclusive_hierarchy_runs_and_back_invalidates() {
    let r = run(SystemConfig::baseline_inclusive(), "mcf_like", 30_000);
    assert!(r.ipc() > 0.02);
    // The 8 MB inclusive LLC sees enough traffic to evict and
    // back-invalidate at this footprint? mcf touches ~1 MB per 30K ops,
    // so back-invalidates may be zero; just verify counters are sane.
    let s = &r.hierarchy;
    assert!(s.llc.fills > 0);
}

#[test]
fn mp_shared_llc_sees_contention() {
    let spec = suite::by_name("stencil_like").unwrap();
    let traces = [
        spec.generate(8_000, 1),
        spec.generate(8_000, 2),
        spec.generate(8_000, 3),
        spec.generate(8_000, 4),
    ];
    let alone = System::new(SystemConfig::baseline_exclusive()).run_st(traces[0].clone());
    let mp = System::new(SystemConfig::baseline_exclusive().with_cores(4)).run_mp(traces);
    // Four streaming cores share the LLC and DRAM: per-core IPC cannot
    // beat running alone.
    for r in &mp.per_core {
        assert!(r.ipc() <= alone.ipc() * 1.1);
    }
    let ws = mp.weighted_speedup(&[alone.ipc(); 4]);
    assert!(ws > 1.0 && ws <= 4.4, "weighted speedup {ws}");
}
